"""Shard execution strategies: serial, thread pool, process pool.

A fleet's shards share nothing, so the only question is *where* their
epochs run:

* ``"serial"`` — one loop in the calling thread (the reference);
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`;
  NumPy releases the GIL inside the batch substrate's array ops, but the
  Python share of each epoch (monitoring actions, history bookkeeping)
  still serialises on one interpreter;
* ``"process"`` — one single-worker
  :class:`~concurrent.futures.ProcessPoolExecutor` per shard group.
  Each worker process receives its shards' **full simulation state once**
  (pickled at start-up), owns it for the rest of the run, and publishes
  its columnar epoch results through double-buffered
  :mod:`multiprocessing.shared_memory` segments
  (:mod:`repro.fleet.shm`): decision arrays and counter-total rows are
  written in place and only a tiny descriptor crosses the pool pipe, so
  fleet throughput scales with cores instead of with one interpreter
  and the IPC tax stays near zero.

Whatever the strategy, per-shard results merge in shard insertion
order and every shard evolves from its own pickled RNG state, so a
fleet run is **bit-identical for any worker count** (pinned by
``tests/integration/test_parallel_fleet.py``).

The process strategy deliberately uses *dedicated* single-worker pools
instead of one shared pool: task-to-worker affinity is what lets each
worker keep its shards' state resident.  Workers are spawned (not
forked), so the exchanged state is exactly the explicit payload and the
strategy behaves identically on every platform and Python version.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.warning import WarningAction
from repro.fleet.faults import FaultPlan
from repro.fleet.shm import (
    ShmBlockReader,
    ShmBlockWriter,
    ShmEpochDescriptor,
    close_readers,
    unlink_worker_segments,
)
from repro.fleet.supervisor import (
    FaultPolicy,
    GroupSnapshot,
    WorkerHealth,
    WorkerSupervisor,
)
from repro.fleet.telemetry import (
    C_DESCRIPTOR_BYTES,
    C_SHM_REGROWS,
    TelemetryRegistry,
    WorkerSpanBuffer,
)
from repro.hardware.batch import N_COUNTERS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.deepdive import EpochReport
    from repro.fleet.fleet import FleetShard, ScheduledStress
    from repro.fleet.lifecycle import LifecycleEngine

#: Supported shard execution strategies.
EXECUTOR_KINDS = ("serial", "thread", "process")

#: Stable warning-action code table shared by parent and workers (the
#: decision arrays store indices into this tuple).
WARNING_ACTIONS: Tuple[str, ...] = tuple(action.value for action in WarningAction)
_ACTION_INDEX: Dict[str, int] = {value: i for i, value in enumerate(WARNING_ACTIONS)}


def apply_stress_schedule(
    shards: Mapping[str, "FleetShard"],
    schedule: Sequence["ScheduledStress"],
    epoch: int,
) -> None:
    """Switch scheduled stress VMs on or off for the given epoch.

    Runs wherever the shard state lives: in the fleet process for the
    serial/thread strategies, inside each worker (against its own shard
    subset) for the process strategy.
    """
    for stress in schedule:
        shard = shards.get(stress.shard_id)
        if shard is None:
            continue
        # host_of() reads the shared placement cache directly; all_vms()
        # would copy the whole per-VM dict once per schedule entry per
        # epoch — a real cost once the region layer multiplies shards.
        host_name = shard.cluster.host_of(stress.vm_name)
        if host_name is None:
            continue
        active = stress.start_epoch <= epoch < stress.end_epoch
        shard.cluster.hosts[host_name].set_load(
            stress.vm_name, stress.intensity if active else 0.0
        )


# ----------------------------------------------------------------------
# Columnar epoch results (the process strategy's wire format)
# ----------------------------------------------------------------------
@dataclass
class ColumnarShardReport:
    """One shard's epoch outcome as flat arrays.

    Row ``i`` of every array describes the epoch's ``i``-th observation
    (DeepDive's deterministic placement order).  The arrays carry
    everything the fleet aggregates — actions, analyzer invocations,
    confirmations, distances and sibling counts — without materialising
    per-VM observation objects, which is what keeps the parent/worker
    exchange cheap at 10k VMs.

    ``vm_names`` may be ``None`` in transit when the shard's VM set is
    unchanged since the previously shipped epoch (the common steady
    state); the parent-side executor rehydrates it from its cache before
    the report reaches callers.
    """

    shard_id: str
    epoch: int
    #: Observation names in row order (``None`` only in transit).
    vm_names: Optional[Tuple[str, ...]]
    #: Index into :data:`WARNING_ACTIONS` per observation.
    action_codes: np.ndarray
    #: Mahalanobis distance of each warning decision.
    distances: np.ndarray
    #: Sibling VMs consulted / agreeing for the global check.
    siblings_consulted: np.ndarray
    siblings_agreeing: np.ndarray
    #: Whether the analyzer ran for the observation.
    analyzed: np.ndarray
    #: Whether interference was confirmed (analysis or known signature).
    confirmed: np.ndarray
    #: Sum of the shard's raw counter block for the epoch (Table-1
    #: column order), read straight from the hosts' counter-store rings.
    #: Contract: a shard whose hosts hold **no resident VMs at all**
    #: (mass departures, full drain) reports an explicit **all-zeros
    #: row** — the telemetry is present and genuinely zero.  ``None``
    #: means the telemetry is **unavailable**: at least one populated
    #: host has no resident batch counter block (scalar substrate, or a
    #: scalar epoch flushed the ring).  Fleet-level aggregation skips
    #: unavailable shards instead of discarding the fleet total (see
    #: :meth:`ColumnarFleetReport.counter_totals`).
    counter_totals: Optional[np.ndarray] = None

    def observations(self) -> int:
        return int(self.action_codes.shape[0])

    def analyzer_invocations(self) -> int:
        return int(np.count_nonzero(self.analyzed))

    def confirmed_interference(self) -> List[str]:
        names = self.vm_names or ()
        return [names[i] for i in np.nonzero(self.confirmed)[0]]

    def confirmed_count(self) -> int:
        """Confirmed observations, counted without touching vm_names."""
        return int(np.count_nonzero(self.confirmed))

    def action_counts(self) -> np.ndarray:
        """Per-action decision counts (:data:`WARNING_ACTIONS` order)."""
        return np.bincount(self.action_codes, minlength=len(WARNING_ACTIONS))

    def action_histogram(self) -> Dict[str, int]:
        counts = self.action_counts()
        return {
            WARNING_ACTIONS[i]: int(count)
            for i, count in enumerate(counts.tolist())
            if count
        }


@dataclass
class ColumnarFleetReport:
    """Fleet-wide columnar epoch outcome (mirrors ``FleetEpochReport``).

    Exposes the same aggregate API as
    :class:`~repro.fleet.fleet.FleetEpochReport`, so
    :meth:`~repro.fleet.fleet.FleetRunSummary.accumulate` consumes either
    interchangeably; only the per-VM observation objects are absent.
    """

    epoch: int
    shard_reports: Dict[str, ColumnarShardReport] = field(default_factory=dict)
    #: Shards excluded from this epoch because their worker was
    #: quarantined (graceful degradation) — empty on a healthy fleet.
    missing_shards: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.missing_shards)

    def observations(self) -> int:
        return sum(r.observations() for r in self.shard_reports.values())

    def analyzer_invocations(self) -> int:
        return sum(r.analyzer_invocations() for r in self.shard_reports.values())

    def confirmed_interference(self) -> List[Tuple[str, str]]:
        return [
            (shard_id, vm_name)
            for shard_id, report in self.shard_reports.items()
            for vm_name in report.confirmed_interference()
        ]

    def confirmed_count(self) -> int:
        """Fleet-wide confirmed observations without per-VM name lists."""
        return sum(r.confirmed_count() for r in self.shard_reports.values())

    def action_counts(self) -> np.ndarray:
        """Per-action counts summed over shards (one pre-sized vector —
        no intermediate per-shard dicts on the summary hot loop)."""
        counts = np.zeros(len(WARNING_ACTIONS), dtype=np.int64)
        for report in self.shard_reports.values():
            counts += report.action_counts()
        return counts

    def action_histogram(self) -> Dict[str, int]:
        counts = self.action_counts()
        return {
            WARNING_ACTIONS[i]: int(count)
            for i, count in enumerate(counts.tolist())
            if count
        }

    def counter_totals(self) -> Optional[np.ndarray]:
        """Fleet-wide raw counter sums over shards with telemetry.

        Shards whose totals are unavailable (``None`` — a populated
        host without a resident batch counter block, i.e. the scalar
        substrate) are *skipped* rather than nulling the whole fleet's
        telemetry; emptied-out shards contribute explicit zeros.
        Returns ``None`` only when no shard has totals at all.
        """
        total = np.zeros(N_COUNTERS, dtype=float)
        available = False
        for report in self.shard_reports.values():
            if report.counter_totals is not None:
                total += report.counter_totals
                available = True
        return total if available else None


def _shard_counter_totals(shard: "FleetShard") -> Optional[np.ndarray]:
    """One shard's epoch counter totals, or ``None`` when unavailable.

    See :attr:`ColumnarShardReport.counter_totals` for the contract:
    hosts without resident VMs contribute nothing (a fully emptied-out
    shard is an explicit all-zeros row, not "unavailable"), while a
    *populated* host without a resident batch counter block — the
    scalar substrate's steady state — makes the shard's telemetry
    unavailable.
    """
    populated = [host for host in shard.cluster.hosts.values() if host.vms]
    if not populated:
        return np.zeros(N_COUNTERS, dtype=float)
    total = np.zeros(N_COUNTERS, dtype=float)
    for host in populated:
        latest = host.counter_store.latest_block()
        if latest is None:
            return None
        total += latest.sum(axis=0)
    return total


def columnar_from_report(
    shard_id: str, epoch: int, report: "EpochReport", shard: "FleetShard"
) -> ColumnarShardReport:
    """Flatten one shard's :class:`EpochReport` into decision arrays."""
    observations = report.observations
    n = len(observations)
    vm_names: List[str] = []
    action_codes = np.empty(n, dtype=np.int8)
    distances = np.empty(n, dtype=float)
    siblings_consulted = np.empty(n, dtype=np.int32)
    siblings_agreeing = np.empty(n, dtype=np.int32)
    analyzed = np.zeros(n, dtype=bool)
    confirmed = np.zeros(n, dtype=bool)
    for i, (vm_name, obs) in enumerate(observations.items()):
        vm_names.append(vm_name)
        warning = obs.warning
        action_codes[i] = _ACTION_INDEX[warning.action.value]
        distances[i] = warning.distance
        siblings_consulted[i] = warning.siblings_consulted
        siblings_agreeing[i] = warning.siblings_agreeing
        analyzed[i] = obs.analysis is not None
        confirmed[i] = obs.interference_confirmed
    return ColumnarShardReport(
        shard_id=shard_id,
        epoch=epoch,
        vm_names=tuple(vm_names),
        action_codes=action_codes,
        distances=distances,
        siblings_consulted=siblings_consulted,
        siblings_agreeing=siblings_agreeing,
        analyzed=analyzed,
        confirmed=confirmed,
        counter_totals=_shard_counter_totals(shard),
    )


#: A strategy's per-shard epoch result: the full report or its columns.
ShardEpochResult = Union["EpochReport", ColumnarShardReport]


# ----------------------------------------------------------------------
# In-process strategies
# ----------------------------------------------------------------------
class SerialShardExecutor:
    """The reference strategy: shard epochs run in the calling thread."""

    kind = "serial"

    def __init__(
        self,
        shards: Mapping[str, "FleetShard"],
        schedule: Sequence["ScheduledStress"],
        lifecycle: Optional["LifecycleEngine"] = None,
        telemetry: Optional[TelemetryRegistry] = None,
    ) -> None:
        self._shards = shards
        self._schedule = schedule
        self._lifecycle = lifecycle
        self._telemetry = telemetry

    def _pre_epoch(self, epoch: int) -> None:
        """Lifecycle events first (they may move or remove the very VMs
        the stress schedule addresses), then the stress schedule."""
        telemetry = self._telemetry
        deep = telemetry.deep(epoch) if telemetry is not None else None
        if deep is None:
            if self._lifecycle is not None:
                self._lifecycle.apply(self._shards, epoch)
            apply_stress_schedule(self._shards, self._schedule, epoch)
            return
        with deep.span("lifecycle", epoch):
            if self._lifecycle is not None:
                self._lifecycle.apply(self._shards, epoch)
            apply_stress_schedule(self._shards, self._schedule, epoch)

    def run_shard_epochs(
        self, epoch: int, analyze: bool, report: str
    ) -> Dict[str, ShardEpochResult]:
        self._pre_epoch(epoch)
        telemetry = self._telemetry
        deep = telemetry.deep(epoch) if telemetry is not None else None
        out: Dict[str, ShardEpochResult] = {}
        for shard_id, shard in self._shards.items():
            out[shard_id] = _shard_epoch(
                shard_id, shard, epoch, analyze, report, telemetry=deep
            )
        return out

    def bootstrap(self) -> None:
        for shard in self._shards.values():
            shard.bootstrap()

    def shutdown(self) -> None:
        pass


class ThreadShardExecutor(SerialShardExecutor):
    """Shard epochs dispatched to a thread pool.

    The batch substrate's NumPy kernels release the GIL, so threads
    overlap the array share of an epoch; the Python share still
    serialises (the process strategy exists for that).
    """

    kind = "thread"

    def __init__(
        self,
        shards: Mapping[str, "FleetShard"],
        schedule: Sequence["ScheduledStress"],
        max_workers: int,
        lifecycle: Optional["LifecycleEngine"] = None,
        telemetry: Optional[TelemetryRegistry] = None,
    ) -> None:
        super().__init__(shards, schedule, lifecycle=lifecycle, telemetry=telemetry)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="fleet-shard"
        )
        # Release the worker threads when the strategy is collected,
        # even if the caller never calls shutdown() explicitly.
        weakref.finalize(self, self._pool.shutdown, wait=False)

    def run_shard_epochs(
        self, epoch: int, analyze: bool, report: str
    ) -> Dict[str, ShardEpochResult]:
        # Lifecycle + stress mutations run single-threaded before the
        # dispatch, so worker threads only ever race on disjoint shards.
        self._pre_epoch(epoch)
        # The registry's span recording is lock-guarded, so pool threads
        # may record per-shard spans concurrently.
        telemetry = self._telemetry
        deep = telemetry.deep(epoch) if telemetry is not None else None
        futures = {
            shard_id: self._pool.submit(
                _shard_epoch, shard_id, shard, epoch, analyze, report, deep
            )
            for shard_id, shard in self._shards.items()
        }
        return {shard_id: futures[shard_id].result() for shard_id in self._shards}

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def _shard_epoch(
    shard_id: str,
    shard: "FleetShard",
    epoch: int,
    analyze: bool,
    report: str,
    telemetry: Union[TelemetryRegistry, WorkerSpanBuffer, None] = None,
) -> ShardEpochResult:
    epoch_report = shard.run_epoch(analyze=analyze, telemetry=telemetry, epoch=epoch)
    if report == "full":
        return epoch_report
    return columnar_from_report(shard_id, epoch, epoch_report, shard)


# ----------------------------------------------------------------------
# Process strategy: state-owning workers, columnar exchange
# ----------------------------------------------------------------------
#: Worker-process state installed by :func:`_worker_init`.
_WORKER_STATE: Dict[str, object] = {}


def _worker_init(payload: bytes) -> None:
    shards, schedule, lifecycle, faults, telemetry = pickle.loads(payload)
    _WORKER_STATE["shards"] = {shard.shard_id: shard for shard in shards}
    _WORKER_STATE["schedule"] = schedule
    _WORKER_STATE["lifecycle"] = lifecycle
    _WORKER_STATE["faults"] = faults
    _WORKER_STATE["sent_names"] = {}
    # ``telemetry`` is the parent's TelemetryConfig (or None): workers
    # record deep spans into a local buffer and ship the drained tuples
    # back on the columnar descriptor — never a registry over the pipe.
    _WORKER_STATE["telemetry"] = (
        WorkerSpanBuffer(telemetry.profile_every)
        if telemetry is not None and telemetry.enabled
        else None
    )


def _worker_ready() -> bool:
    return "shards" in _WORKER_STATE


def _worker_bootstrap() -> None:
    for shard in _WORKER_STATE["shards"].values():
        shard.bootstrap()


def _worker_run_epoch(
    epoch: int, analyze: bool, report: str
) -> Union[ShmEpochDescriptor, List[Tuple[str, ShardEpochResult]]]:
    shards: Dict[str, "FleetShard"] = _WORKER_STATE["shards"]
    sent_names: Dict[str, Tuple[str, ...]] = _WORKER_STATE["sent_names"]
    lifecycle = _WORKER_STATE.get("lifecycle")
    faults: Optional[FaultPlan] = _WORKER_STATE.get("faults")
    buffer: Optional[WorkerSpanBuffer] = _WORKER_STATE.get("telemetry")
    deep = buffer.deep(epoch) if buffer is not None else None
    if faults:
        faults.fire(epoch, "before")
    if deep is None:
        if lifecycle is not None:
            # Each worker owns its shards' lifecycle subset; churn
            # therefore happens where the state lives, epochs before the
            # stress toggle.
            lifecycle.apply(shards, epoch)
        apply_stress_schedule(shards, _WORKER_STATE["schedule"], epoch)
    else:
        with deep.span("lifecycle", epoch):
            if lifecycle is not None:
                lifecycle.apply(shards, epoch)
            apply_stress_schedule(shards, _WORKER_STATE["schedule"], epoch)
    out: List[Tuple[str, ShardEpochResult]] = []
    for shard_id, shard in shards.items():
        result = _shard_epoch(shard_id, shard, epoch, analyze, report, telemetry=deep)
        if isinstance(result, ColumnarShardReport):
            # Ship the VM-name table only when it changed — steady-state
            # epochs are pure arrays on the wire.
            if sent_names.get(shard_id) == result.vm_names:
                result.vm_names = None
            else:
                sent_names[shard_id] = result.vm_names
        out.append((shard_id, result))
    if faults:
        # "mid": state advanced, results not yet shipped.
        faults.fire(epoch, "mid")
    if report == "columnar":
        # Columnar epochs travel through shared memory: the decision
        # arrays and counter rows are written in place and only the
        # descriptor (plus any changed VM-name tables) hits the pipe.
        writer = _WORKER_STATE.get("shm_writer")
        if writer is None:
            writer = ShmBlockWriter(len(shards))
            _WORKER_STATE["shm_writer"] = writer
        descriptor = writer.write(epoch, [result for _, result in out])
        if buffer is not None:
            # Worker spans ride the columnar descriptor — a few dozen
            # bytes on sampled epochs — so the pipe stays tiny.
            descriptor = dataclass_replace(descriptor, spans=buffer.drain())
        if faults:
            faults.fire(epoch, "after")
            descriptor = faults.mangle(epoch, descriptor)
        return descriptor
    if faults:
        faults.fire(epoch, "after")
    if buffer is not None:
        # Full-report epochs have no descriptor to carry spans on;
        # discard instead of letting the buffer grow (the coarse parent
        # spans still cover these epochs).
        buffer.drain()
    return out


def _worker_replay(steps: Sequence[Tuple[int, bool]]) -> int:
    """Re-run epochs state-only during supervised recovery.

    Mirrors :func:`_worker_run_epoch`'s state mutations exactly —
    lifecycle events, stress schedule, then every shard's epoch with the
    recorded ``analyze`` flag — but builds no reports and ships nothing:
    report flattening is a pure read, so skipping it replays the missed
    epochs bit-identically at minimum cost.  Injected faults never fire
    during replay (the respawn payload already dropped the fired ones).
    """
    shards: Dict[str, "FleetShard"] = _WORKER_STATE["shards"]
    lifecycle = _WORKER_STATE.get("lifecycle")
    for epoch, analyze in steps:
        if lifecycle is not None:
            lifecycle.apply(shards, epoch)
        apply_stress_schedule(shards, _WORKER_STATE["schedule"], epoch)
        for shard in shards.values():
            shard.run_epoch(analyze=analyze)
    return len(steps)


def _collect_from_shards(
    shards: Mapping[str, "FleetShard"], lifecycle: Optional["LifecycleEngine"]
) -> Dict[str, Dict[str, object]]:
    """Per-shard statistics snapshot from wherever the state lives."""
    collected: Dict[str, Dict[str, object]] = {}
    lifecycle_stats = lifecycle.stats_dict() if lifecycle is not None else {}
    for shard_id, shard in shards.items():
        deepdive = shard.deepdive
        collected[shard_id] = {
            "detections": shard.detections(),
            "migrations": shard.migrations(),
            "analyzer_invocations": deepdive.analyzer_invocations(),
            "profiling_seconds": deepdive.total_profiling_seconds(),
            "repository_bytes": deepdive.repository_size_bytes(),
            "vms": shard.cluster.vm_count(),
            "hosts": len(shard.cluster.hosts),
            "lifecycle": lifecycle_stats.get(shard_id, {}),
        }
    return collected


def _worker_collect() -> Dict[str, Dict[str, object]]:
    return _collect_from_shards(
        _WORKER_STATE["shards"], _WORKER_STATE.get("lifecycle")
    )


def _worker_snapshot() -> bytes:
    """Pickle this worker's live group state for a fleet checkpoint.

    Ships the shard objects themselves (clusters, DeepDive deployments,
    counter rings, RNG states) plus the lifecycle engine's mutable
    state — the exact state a resumed fleet needs to continue
    bit-identically.  Pickled inside the worker, so only one opaque
    blob crosses the pool pipe.
    """
    shards: Dict[str, "FleetShard"] = _WORKER_STATE["shards"]
    lifecycle = _WORKER_STATE.get("lifecycle")
    return pickle.dumps(
        (
            list(shards.values()),
            lifecycle.state_dict() if lifecycle is not None else None,
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


class ProcessShardExecutor:
    """Shard groups dispatched to dedicated state-owning worker processes.

    ``max_workers`` groups are formed round-robin over shard insertion
    order; each group gets its own single-worker
    :class:`ProcessPoolExecutor` whose initializer installs the group's
    pickled shards (and schedule subset) as resident worker state.  Every
    epoch, the parent submits one task per group and merges the columnar
    results in shard insertion order, so results are identical to serial
    execution for any worker count.

    Columnar epochs are exchanged through each worker's double-buffered
    shared-memory segments (:mod:`repro.fleet.shm`): the worker writes
    decision arrays and counter rows in place and ships only a
    descriptor, and the parent serves NumPy views straight off the
    segments.  Such views stay valid until the worker rewrites the same
    buffer — two further columnar epochs — which the hot
    ``keep_reports=False`` loop never outlives; copy the arrays to hold
    a columnar report longer.  The parent owns segment cleanup: shutdown
    (or interpreter exit, via ``weakref.finalize``) closes and unlinks
    every attached segment, so no ``/dev/shm`` entries survive a run,
    killed workers included.

    The parent's shard objects are only the start-of-run template: once
    workers hold the state, mutating them (or the schedule) from the
    parent has no effect.  Fleet-wide statistics are gathered on demand
    through :meth:`collect`.
    """

    kind = "process"

    def __init__(
        self,
        shards: Mapping[str, "FleetShard"],
        schedule: Sequence["ScheduledStress"],
        max_workers: int,
        start_method: str = "spawn",
        lifecycle: Optional["LifecycleEngine"] = None,
        fault_policy: Optional[FaultPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        telemetry: Optional[TelemetryRegistry] = None,
    ) -> None:
        self._shards = shards
        self._schedule = list(schedule)
        self._lifecycle = lifecycle
        self._telemetry = telemetry
        self._shard_order = list(shards)
        self._start_method = start_method
        workers = max(1, min(max_workers, len(self._shard_order)))
        self._groups: List[List[str]] = [[] for _ in range(workers)]
        for i, shard_id in enumerate(self._shard_order):
            self._groups[i % workers].append(shard_id)
        self._pools: Optional[List[ProcessPoolExecutor]] = None
        #: One shared-memory reader per pool (parallel to ``_pools``).
        self._readers: Optional[List[ShmBlockReader]] = None
        self._stopped = False
        self._broken = False
        self._ever_started = False
        self._bootstrapped = False
        #: Last VM-name table received per shard (rehydrates reports
        #: whose names were elided on the wire).
        self._names_cache: Dict[str, Tuple[str, ...]] = {}
        #: One live health record per worker group (built at spawn).
        self._health: Optional[List[WorkerHealth]] = None
        #: Group indices whose shards were quarantined (graceful
        #: degradation after an exhausted restart budget).
        self._quarantined: set = set()
        #: Shards owned by workers that died without recovery (names the
        #: snapshot/epoch refusal errors).
        self._dead_shards: List[str] = []
        self.fault_policy = fault_policy
        #: The injected fault schedule (tests/CI chaos); falls back to
        #: the REPRO_FLEET_FAULT_PLAN environment hook.
        self._fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        self._supervisor = (
            WorkerSupervisor(fault_policy, self) if fault_policy is not None else None
        )

    @property
    def workers(self) -> int:
        return len(self._groups)

    @property
    def started(self) -> bool:
        return self._pools is not None

    @property
    def quarantined_shards(self) -> Tuple[str, ...]:
        """Shards excluded by quarantined workers, in shard order."""
        if not self._quarantined:
            return ()
        dead = {sid for group in self._quarantined for sid in self._groups[group]}
        return tuple(sid for sid in self._shard_order if sid in dead)

    def worker_health(self) -> List[Dict[str, object]]:
        """One JSON-able health row per worker group (empty pre-spawn)."""
        if self._health is None:
            return []
        return [health.as_dict() for health in self._health]

    def _group_payload(
        self,
        index: int,
        shards: Sequence["FleetShard"],
        lifecycle: Optional["LifecycleEngine"],
        fired_through: Optional[int] = None,
    ) -> bytes:
        """Pickle one worker group's init payload.

        ``fired_through`` (a respawn) drops the group's injected faults
        up to and including the failed epoch, so recovery replay cannot
        re-fire a kill that already happened.
        """
        members = set(self._groups[index])
        faults = None
        if self._fault_plan is not None:
            faults = self._fault_plan.for_worker(index)
            if fired_through is not None:
                faults = faults.after_epoch(fired_through)
            if not faults:
                faults = None
        return pickle.dumps(
            (
                list(shards),
                [s for s in self._schedule if s.shard_id in members],
                lifecycle,
                faults,
                # Only the config crosses the pipe; the worker builds a
                # local WorkerSpanBuffer from it.
                self._telemetry.config if self._telemetry is not None else None,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def _ensure_started(self) -> List[ProcessPoolExecutor]:
        if self._pools is not None:
            return self._pools
        if self._stopped:
            # Respawning would silently reset the run to the parent's
            # start-of-run template state.
            raise RuntimeError(
                "process shard executor was shut down; build a new Fleet "
                "to start another run"
            )
        if self._lifecycle is not None and self._lifecycle.record_decisions:
            warnings.warn(
                "lifecycle record_decisions: the placement-decision log is "
                "recorded inside the worker processes and is not collected "
                "back to the parent engine; audit admission decisions with "
                "a serial or thread fleet instead",
                RuntimeWarning,
                stacklevel=4,
            )
        context = multiprocessing.get_context(self._start_method)
        pools: List[ProcessPoolExecutor] = []
        for index, group in enumerate(self._groups):
            payload = self._group_payload(
                index,
                [self._shards[shard_id] for shard_id in group],
                self._lifecycle.subset(group) if self._lifecycle is not None else None,
            )
            pool = ProcessPoolExecutor(
                max_workers=1,
                mp_context=context,
                initializer=_worker_init,
                initargs=(payload,),
            )
            weakref.finalize(self, pool.shutdown, wait=False)
            pools.append(pool)
        # Surface spawn/unpickling failures eagerly rather than on the
        # first epoch.
        for pool in pools:
            if not pool.submit(_worker_ready).result():
                raise RuntimeError("fleet worker failed to initialise its shards")
        self._pools = pools
        self._ever_started = True
        readers = [ShmBlockReader() for _ in pools]
        self._readers = readers
        # Unlink the transport segments at interpreter exit even if the
        # caller never reaches shutdown() — /dev/shm must end empty.
        weakref.finalize(self, close_readers, readers)
        # Pin each worker's pid now: a hung worker cannot answer a pid
        # query later, and the supervisor needs a kill target.
        self._health = []
        for index, pool in enumerate(pools):
            health = WorkerHealth(
                worker=index, shard_ids=tuple(self._groups[index])
            )
            health.pid = pool.submit(os.getpid).result()
            health.beat()
            self._health.append(health)
        return pools

    def _commit_pairs(
        self,
        pairs: Sequence[Tuple[str, ShardEpochResult]],
        merged: Dict[str, ShardEpochResult],
    ) -> None:
        for shard_id, shard_result in pairs:
            merged[shard_id] = shard_result
            # Commit name tables as they arrive, before the ordered
            # merge, so a later worker's failure cannot desync the
            # elision caches.
            if (
                isinstance(shard_result, ColumnarShardReport)
                and shard_result.vm_names is not None
            ):
                self._names_cache[shard_id] = shard_result.vm_names

    def run_shard_epochs(
        self, epoch: int, analyze: bool, report: str
    ) -> Dict[str, ShardEpochResult]:
        if self._broken:
            raise RuntimeError(
                "a previous fleet epoch failed mid-flight, so the worker-side "
                "shard states are no longer in lock step; build a new Fleet"
                + self._dead_shard_clause()
            )
        pools = self._ensure_started()
        supervisor = self._supervisor
        if supervisor is not None:
            supervisor.note_epoch(epoch, analyze)
        timeout = (
            supervisor.policy.heartbeat_timeout if supervisor is not None else None
        )
        merged: Dict[str, ShardEpochResult] = {}
        futures: List[Optional[object]] = [None] * len(pools)
        failures: List[Tuple[int, BaseException]] = []
        telemetry = self._telemetry
        dispatch = (
            telemetry.span("dispatch", epoch)
            if telemetry is not None
            else nullcontext()
        )
        with dispatch:
            for index, pool in enumerate(pools):
                if index in self._quarantined:
                    continue
                try:
                    # A pool that already noticed a dead worker raises
                    # BrokenProcessPool at submit time.
                    futures[index] = pool.submit(
                        _worker_run_epoch, epoch, analyze, report
                    )
                except BaseException as exc:  # noqa: BLE001 - classified below
                    failures.append((index, exc))
            for index, future in enumerate(futures):
                if future is None:
                    continue
                try:
                    result = future.result(timeout=timeout)
                    if isinstance(result, ShmEpochDescriptor):
                        # Columnar epoch: the payload lives in the
                        # worker's shared segments; materialise views
                        # (remapping on a regrow handshake).
                        reader = self._readers[index]
                        regrows_before = reader.regrows
                        pairs = reader.read(result)
                        if telemetry is not None:
                            self._account_descriptor(
                                telemetry, index, result, regrows_before
                            )
                    else:
                        pairs = result
                except BaseException as exc:  # noqa: BLE001 - classified below
                    # Worker death (BrokenProcessPool), a tripped
                    # heartbeat deadline (TimeoutError) or a lost/corrupt
                    # descriptor (attach failure) all land here; the
                    # supervisor decides what survives.
                    failures.append((index, exc))
                    continue
                self._commit_pairs(pairs, merged)
                self._health[index].beat(epoch)
        fatal = supervisor is None or any(
            not isinstance(exc, Exception) for _, exc in failures
        )
        if failures and fatal:
            # Unsupervised (or interrupted): some workers advanced their
            # shards this epoch and some did not; the run cannot
            # continue deterministically.
            for index, _ in failures:
                self._note_dead_group(index)
            self._broken = True
            self._drain_descriptors(futures)
            raise failures[0][1]
        for index, exc in failures:
            pairs = supervisor.recover(index, epoch, analyze, report, exc)
            if pairs is not None:
                self._commit_pairs(pairs, merged)
        if supervisor is not None:
            supervisor.after_epoch(epoch)
        if telemetry is None:
            return self._ordered_merge(epoch, merged)
        with telemetry.span("merge", epoch):
            return self._ordered_merge(epoch, merged)

    def _account_descriptor(
        self,
        telemetry: TelemetryRegistry,
        index: int,
        descriptor: ShmEpochDescriptor,
        regrows_before: int,
    ) -> None:
        """Fold one received descriptor into the telemetry bus: its
        pipe cost, any regrow handshake, and the worker's spans."""
        telemetry.inc(
            C_DESCRIPTOR_BYTES,
            len(pickle.dumps(descriptor, protocol=pickle.HIGHEST_PROTOCOL)),
        )
        regrown = self._readers[index].regrows - regrows_before
        if regrown:
            telemetry.inc(C_SHM_REGROWS, regrown)
        if descriptor.spans:
            telemetry.fold_worker_spans(
                descriptor.spans, self._health[index].pid
            )

    # ------------------------------------------------------------------
    # Supervised recovery mechanics (driven by WorkerSupervisor)
    # ------------------------------------------------------------------
    def _kill_worker(self, index: int) -> Optional[int]:
        """SIGKILL a group's resident worker (hangs cannot be asked to
        exit); returns the pid, tolerant of an already-dead process."""
        health = self._health[index] if self._health is not None else None
        pid = health.pid if health is not None else None
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        return pid

    def _release_group(self, index: int) -> None:
        """Tear down one group's pool, reader and leftover segments."""
        pid = self._kill_worker(index)
        self._pools[index].shutdown(wait=False)
        # Replacing the reader inside the shared list keeps the
        # interpreter-exit finalize accurate (it closes the list).
        self._readers[index].close()
        self._readers[index] = ShmBlockReader()
        if pid is not None:
            # Sweep segments the dead worker created but never announced
            # (in-flight regrow generations, unshipped descriptors).
            unlink_worker_segments(pid)

    def _respawn_group(
        self, index: int, snapshot: GroupSnapshot, fired_through: int
    ) -> None:
        """Replace a failed group's worker with one rehydrated from the
        recovery snapshot (or the run-start template)."""
        self._release_group(index)
        group = self._groups[index]
        if snapshot.blob is None:
            shards: List["FleetShard"] = [self._shards[sid] for sid in group]
            engine = (
                self._lifecycle.subset(group) if self._lifecycle is not None else None
            )
        else:
            shards, lifecycle_state = pickle.loads(snapshot.blob)
            engine = None
            if self._lifecycle is not None:
                engine = self._lifecycle.subset(group)
                if lifecycle_state is not None:
                    engine.load_state(lifecycle_state)
        payload = self._group_payload(
            index, shards, engine, fired_through=fired_through
        )
        context = multiprocessing.get_context(self._start_method)
        pool = ProcessPoolExecutor(
            max_workers=1,
            mp_context=context,
            initializer=_worker_init,
            initargs=(payload,),
        )
        weakref.finalize(self, pool.shutdown, wait=False)
        if not pool.submit(_worker_ready).result():
            pool.shutdown(wait=False)
            raise RuntimeError("respawned fleet worker failed to initialise its shards")
        self._pools[index] = pool
        health = self._health[index]
        health.pid = pool.submit(os.getpid).result()
        health.beat()
        if snapshot.blob is None and self._bootstrapped:
            # The template predates the in-worker bootstrap; re-run it so
            # replay starts from the same learned repositories.
            pool.submit(_worker_bootstrap).result()

    def _replay_group(
        self,
        index: int,
        steps: Sequence[Tuple[int, bool]],
        timeout: Optional[float],
    ) -> None:
        if not steps:
            return
        self._pools[index].submit(_worker_replay, list(steps)).result(timeout=timeout)

    def _run_group_epoch(
        self,
        index: int,
        epoch: int,
        analyze: bool,
        report: str,
        timeout: Optional[float],
    ) -> List[Tuple[str, ShardEpochResult]]:
        """Run one epoch on one group (the recovery re-run)."""
        result = self._pools[index].submit(
            _worker_run_epoch, epoch, analyze, report
        ).result(timeout=timeout)
        if isinstance(result, ShmEpochDescriptor):
            reader = self._readers[index]
            regrows_before = reader.regrows
            pairs = reader.read(result)
            if self._telemetry is not None:
                self._account_descriptor(
                    self._telemetry, index, result, regrows_before
                )
            return pairs
        return result

    def _quarantine_group(self, index: int) -> None:
        """Exclude a group's shards from the rest of the run."""
        self._release_group(index)
        self._quarantined.add(index)
        health = self._health[index]
        health.quarantined = True
        health.alive = False

    def _note_dead_group(self, index: int) -> None:
        for shard_id in self._groups[index]:
            if shard_id not in self._dead_shards:
                self._dead_shards.append(shard_id)
        if self._health is not None:
            self._health[index].alive = False

    def _mark_group_dead(self, index: int) -> None:
        """Terminal failure: record the dead shards and break the run."""
        self._note_dead_group(index)
        self._broken = True
        self._release_group(index)

    def _dead_shard_clause(self) -> str:
        if not self._dead_shards:
            return ""
        ordered = [sid for sid in self._shard_order if sid in set(self._dead_shards)]
        return f" (dead worker shards: {', '.join(ordered)})"

    def _fetch_group_snapshots(self) -> List[Tuple[int, Optional[bytes]]]:
        """Per-group worker snapshots for the supervisor's resnapshot
        cadence; a group that cannot answer yields ``None`` (its stale
        snapshot stays in force)."""
        out: List[Tuple[int, Optional[bytes]]] = []
        for index, pool in enumerate(self._pools or ()):
            if index in self._quarantined:
                continue
            try:
                out.append((index, pool.submit(_worker_snapshot).result()))
            except Exception:  # noqa: BLE001 - detected again next epoch
                out.append((index, None))
        return out

    def _drain_descriptors(self, futures: Sequence[object]) -> None:
        """Reclaim every transport segment after a mid-epoch failure.

        When one worker dies mid-epoch, the surviving workers may already
        have written their buffers — possibly into segments freshly
        created this epoch whose names only the undelivered descriptors
        carry.  Attaching them here puts every live segment under the
        readers' ownership, so shutdown still unlinks all of /dev/shm.
        Segments whose descriptors never arrived at all (the worker died
        between allocating a regrow generation and shipping the
        descriptor naming it) are swept by pid afterwards.
        """
        for reader, future in zip(self._readers or (), futures):
            if future is None:
                continue
            try:
                result = future.result(timeout=5.0)
                if isinstance(result, ShmEpochDescriptor):
                    reader.read(result)
            except BaseException:
                continue
        attached = {
            name
            for reader in self._readers or ()
            for name in reader.segment_names()
        }
        for health in self._health or ():
            if health.pid is not None:
                unlink_worker_segments(health.pid, skip=attached)

    def _ordered_merge(
        self, epoch: int, merged: Dict[str, ShardEpochResult]
    ) -> Dict[str, ShardEpochResult]:
        """Validate the collected shard set and merge in insertion order.

        A worker returning an unexpected or incomplete shard set (or a
        name-elided report with no cached name table) means the
        worker-side states can no longer be trusted: the executor is
        marked broken and the failure names the offending shards instead
        of surfacing as a raw ``KeyError`` mid-merge.
        """
        quarantined = set(self.quarantined_shards)
        missing = [
            sid
            for sid in self._shard_order
            if sid not in merged and sid not in quarantined
        ]
        unexpected = [sid for sid in merged if sid not in self._shards]
        if missing or unexpected:
            self._broken = True
            raise RuntimeError(
                f"fleet epoch {epoch} returned an inconsistent shard set "
                f"(missing: {missing or 'none'}, unexpected: "
                f"{unexpected or 'none'}); the worker states are no longer "
                "in lock step — build a new Fleet"
            )
        out: Dict[str, ShardEpochResult] = {}
        for shard_id in self._shard_order:
            if shard_id in quarantined:
                continue
            result = merged[shard_id]
            if isinstance(result, ColumnarShardReport) and result.vm_names is None:
                names = self._names_cache.get(shard_id)
                if names is None:
                    self._broken = True
                    raise RuntimeError(
                        f"fleet epoch {epoch} elided the VM-name table of "
                        f"shard {shard_id!r} but no table was ever shipped; "
                        "the worker states are no longer in lock step — "
                        "build a new Fleet"
                    )
                result.vm_names = names
            out[shard_id] = result
        return out

    def bootstrap(self) -> None:
        pools = self._ensure_started()
        for future in [pool.submit(_worker_bootstrap) for pool in pools]:
            future.result()
        # Respawned-from-template workers must repeat the bootstrap
        # before replay, or their repositories diverge from the run.
        self._bootstrapped = True

    def worker_pids(self) -> List[int]:
        """One resident worker pid per shard group (spawning if needed)."""
        self._ensure_started()
        return [health.pid for health in self._health]

    def collect(self) -> Dict[str, Dict[str, object]]:
        """Per-shard statistics and event logs.

        Fetched from the workers when they are running.  Before any
        worker has started (no bootstrap, no epoch) the parent's
        template shards *are* the current state, so they are served
        directly instead of cold-spawning every pool just to read the
        same start-of-run snapshot back.
        """
        if self._broken:
            raise RuntimeError(
                "fleet workers are broken (a previous epoch failed "
                "mid-flight); statistics can no longer be collected"
                + self._dead_shard_clause()
            )
        if self._pools is None:
            if self._ever_started:
                # Started then shut down: the worker state is gone and
                # the template would silently misreport the run
                # (Fleet.shutdown caches a final snapshot beforehand).
                raise RuntimeError(
                    "process shard executor was shut down; worker "
                    "statistics were discarded — collect before shutdown"
                )
            return _collect_from_shards(self._shards, self._lifecycle)
        merged: Dict[str, Dict[str, object]] = {}
        try:
            futures = [
                pool.submit(_worker_collect)
                for index, pool in enumerate(self._pools)
                if index not in self._quarantined
            ]
            for future in futures:
                merged.update(future.result())
        except BaseException:
            self._broken = True
            raise
        return merged

    def snapshot_state(
        self,
    ) -> Optional[
        Tuple[
            Dict[str, "FleetShard"],
            Optional[Dict[str, Dict[str, object]]],
            Tuple[str, ...],
        ]
    ]:
        """The live worker-side shard objects and lifecycle state.

        Returns ``(shards in shard order, merged lifecycle state dict or
        None, missing shard ids)`` fetched from the workers, or ``None``
        before any worker has started — the parent's template objects
        *are* the current state then, and the caller snapshots those
        locally instead of cold-spawning every pool.  Worker groups own
        disjoint shard sets, so their lifecycle states reassemble by
        plain per-shard union.  Quarantined groups are skipped: their
        shard ids come back in the third slot so the checkpoint can
        carry an explicit ``missing_shards`` manifest.  Broken workers
        cannot be checkpointed (their shard states are no longer in
        lock step), and neither can a shut-down executor (the worker
        state is gone): both raise :class:`RuntimeError`.
        """
        from repro.fleet.lifecycle import LifecycleEngine

        if self._broken:
            raise RuntimeError(
                "fleet workers are broken (a previous epoch failed "
                "mid-flight)"
                + self._dead_shard_clause()
                + "; the run cannot be checkpointed — resume from the "
                "last checkpoint instead (repro.fleet.resume_fleet)"
            )
        if self._pools is None:
            if self._ever_started:
                raise RuntimeError(
                    "process shard executor was shut down; the worker "
                    "state was discarded — snapshot before shutdown"
                )
            return None
        quarantined = set(self.quarantined_shards)
        shards: Dict[str, "FleetShard"] = {}
        lifecycle_states: List[Dict[str, Dict[str, object]]] = []
        try:
            futures = [
                pool.submit(_worker_snapshot)
                for index, pool in enumerate(self._pools)
                if index not in self._quarantined
            ]
            for future in futures:
                group_shards, lifecycle_state = pickle.loads(future.result())
                for shard in group_shards:
                    shards[shard.shard_id] = shard
                if lifecycle_state is not None:
                    lifecycle_states.append(lifecycle_state)
        except BaseException:
            # A worker that cannot answer a read-only snapshot is dead;
            # further epochs would desync from the surviving groups.
            self._broken = True
            raise
        missing = [
            sid
            for sid in self._shard_order
            if sid not in shards and sid not in quarantined
        ]
        unexpected = [sid for sid in shards if sid not in self._shards]
        if missing or unexpected:
            self._broken = True
            raise RuntimeError(
                "worker snapshot returned an inconsistent shard set "
                f"(missing: {missing or 'none'}, unexpected: "
                f"{unexpected or 'none'}); the worker states are no "
                "longer in lock step — build a new Fleet"
            )
        ordered = {sid: shards[sid] for sid in self._shard_order if sid in shards}
        merged = (
            LifecycleEngine.merge_states(lifecycle_states)
            if lifecycle_states
            else None
        )
        return ordered, merged, self.quarantined_shards

    def shutdown(self) -> None:
        self._stopped = True
        try:
            if self._pools is not None:
                for pool in self._pools:
                    pool.shutdown(wait=True)
                self._pools = None
        finally:
            if self._readers is not None:
                # Workers are gone; close and unlink every transport
                # segment so /dev/shm ends the run empty — even when a
                # broken pool's shutdown raised above.
                close_readers(self._readers)
                self._readers = None


def make_shard_executor(
    kind: str,
    shards: Mapping[str, "FleetShard"],
    schedule: Sequence["ScheduledStress"],
    max_workers: int,
    lifecycle: Optional["LifecycleEngine"] = None,
    fault_policy: Optional[FaultPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    telemetry: Optional[TelemetryRegistry] = None,
) -> Union[SerialShardExecutor, ThreadShardExecutor, ProcessShardExecutor]:
    """Instantiate the strategy for ``kind`` (see :data:`EXECUTOR_KINDS`).

    ``fault_policy``/``fault_plan`` only apply to the process executor
    (the only strategy with workers to supervise or kill);
    ``telemetry`` threads the owning fleet's registry into whichever
    strategy runs the shards.
    """
    if kind == "process":
        return ProcessShardExecutor(
            shards,
            schedule,
            max_workers=max_workers,
            lifecycle=lifecycle,
            fault_policy=fault_policy,
            fault_plan=fault_plan,
            telemetry=telemetry,
        )
    if kind == "thread" and max_workers > 1 and len(shards) > 1:
        return ThreadShardExecutor(
            shards,
            schedule,
            max_workers=max_workers,
            lifecycle=lifecycle,
            telemetry=telemetry,
        )
    return SerialShardExecutor(
        shards, schedule, lifecycle=lifecycle, telemetry=telemetry
    )
