"""Versioned fleet checkpoints: snapshot a live run, resume it anywhere.

A :class:`Checkpoint` is the durable form of a running fleet: a small
schema-validated JSON metadata header (kind, epoch, executor topology,
shard inventory) plus a pickled state payload — the shard objects
themselves (clusters, DeepDive deployments, counter-store rings and RNG
states travel inside them, exactly as they already do to process
workers), the stress schedule, the lifecycle timeline and its
accumulated per-shard state, and optionally the run summary so far.
Because pickled shard state is proven to evolve bit-identically across
executors (the process-equivalence property tests), a run resumed from a
checkpoint at any epoch is bit-identical to an uninterrupted one —
pinned by ``tests/property/test_checkpoint_equivalence.py``.

On disk the format is::

    16-byte magic | u32 version | u32 meta length | meta JSON | payload

written atomically (write-then-rename), so a crash mid-checkpoint never
leaves a half-written file where a resume would find it.  Everything
about the file is validated loudly: :meth:`Checkpoint.load` refuses bad
magic, truncated headers and future versions, and
:func:`validate_checkpoint_file` (the CI schema gate) names every
metadata violation at once, optionally deep-checking that the payload
unpickles and agrees with the header's shard inventory.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.fleet.executor import EXECUTOR_KINDS

#: File magic: fixed 16 bytes, so a foreign file is refused on read one.
CHECKPOINT_MAGIC = b"REPRO-FLEET-CKPT"

#: Current checkpoint format version (bump on incompatible change).
CHECKPOINT_VERSION = 1

#: Fleet kinds a checkpoint can hold.
CHECKPOINT_KINDS = ("fleet", "regional")

#: Keys every checkpoint payload dict carries.
PAYLOAD_KEYS = (
    "shards",
    "schedule",
    "timeline",
    "admission",
    "record_decisions",
    "lifecycle_state",
    "summary",
    "extra",
)

_HEADER = struct.Struct(">II")


class CheckpointError(ValueError):
    """A checkpoint file, header or metadata block failed validation."""


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write-then-rename, so resume never sees a half-written file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def _check_meta(meta: Mapping[str, object]) -> List[str]:
    """Every schema violation in ``meta`` (empty when valid)."""
    problems: List[str] = []
    if not isinstance(meta, Mapping):
        return [f"metadata must be a mapping, got {type(meta).__name__}"]

    def _int(name: str, minimum: int = 0) -> Optional[int]:
        value = meta.get(name)
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"{name}: expected an integer, got {value!r}")
            return None
        if value < minimum:
            problems.append(f"{name}: {value} must be >= {minimum}")
            return None
        return value

    _int("version", minimum=1)
    kind = meta.get("kind")
    if kind not in CHECKPOINT_KINDS:
        problems.append(f"kind: {kind!r} not in {CHECKPOINT_KINDS}")
    _int("epoch")
    executor = meta.get("executor")
    if executor not in EXECUTOR_KINDS:
        problems.append(f"executor: {executor!r} not in {EXECUTOR_KINDS}")
    max_workers = meta.get("max_workers")
    if max_workers is not None and (
        not isinstance(max_workers, int)
        or isinstance(max_workers, bool)
        or max_workers < 1
    ):
        problems.append(f"max_workers: {max_workers!r} must be None or >= 1")
    shard_ids = meta.get("shard_ids")
    if (
        not isinstance(shard_ids, (list, tuple))
        or not shard_ids
        or not all(isinstance(sid, str) and sid for sid in shard_ids)
    ):
        problems.append("shard_ids: expected a non-empty list of shard id strings")
        shard_ids = None
    elif len(set(shard_ids)) != len(shard_ids):
        problems.append("shard_ids: duplicate shard ids")
    _int("total_vms")
    _int("total_hosts")
    for name in ("has_lifecycle", "has_summary", "has_extra"):
        if not isinstance(meta.get(name), bool):
            problems.append(f"{name}: expected a boolean, got {meta.get(name)!r}")
    created = meta.get("created_unix")
    if not isinstance(created, (int, float)) or isinstance(created, bool):
        problems.append(f"created_unix: expected a timestamp, got {created!r}")

    # Optional degraded-run manifest (absent in pre-supervision
    # checkpoints): shards a quarantined worker took out of the run —
    # they are, by construction, not in the snapshotted shard inventory.
    missing = meta.get("missing_shards")
    if missing is not None:
        if not isinstance(missing, (list, tuple)) or not all(
            isinstance(sid, str) and sid for sid in missing
        ):
            problems.append(
                "missing_shards: expected a list of shard id strings"
            )
        elif len(set(missing)) != len(missing):
            problems.append("missing_shards: duplicate shard ids")
        elif shard_ids is not None:
            overlap = sorted(set(missing) & set(shard_ids))
            if overlap:
                problems.append(
                    "missing_shards: "
                    f"{overlap} also appear in shard_ids — a shard cannot "
                    "be both snapshotted and missing"
                )

    regions = meta.get("regions")
    if kind == "regional":
        if not isinstance(regions, list) or not regions:
            problems.append("regions: a regional checkpoint needs a region list")
        else:
            covered: List[str] = []
            for i, entry in enumerate(regions):
                if not isinstance(entry, Mapping):
                    problems.append(f"regions[{i}]: expected a mapping")
                    continue
                region_id = entry.get("region_id")
                if not isinstance(region_id, str) or not region_id:
                    problems.append(f"regions[{i}]: region_id must be a string")
                region_shards = entry.get("shard_ids")
                if not isinstance(region_shards, (list, tuple)) or not region_shards:
                    problems.append(
                        f"regions[{i}]: shard_ids must be a non-empty list"
                    )
                else:
                    covered.extend(region_shards)
                workers = entry.get("max_workers")
                if workers is not None and (
                    not isinstance(workers, int)
                    or isinstance(workers, bool)
                    or workers < 1
                ):
                    problems.append(
                        f"regions[{i}]: max_workers {workers!r} must be None or >= 1"
                    )
            if shard_ids is not None and covered and covered != list(shard_ids):
                problems.append(
                    "regions: concatenated region shard_ids do not reproduce "
                    "the checkpoint's shard order"
                )
    elif regions is not None:
        problems.append("regions: must be null for a flat fleet checkpoint")
    return problems


def validate_checkpoint_meta(meta: Mapping[str, object]) -> None:
    """Raise :class:`CheckpointError` naming every metadata violation."""
    problems = _check_meta(meta)
    if problems:
        raise CheckpointError(
            "invalid checkpoint metadata: " + "; ".join(problems)
        )


@dataclass(frozen=True)
class Checkpoint:
    """One resumable fleet state: validated metadata + pickled payload.

    Produced by ``Fleet.snapshot()`` / ``RegionalFleet.snapshot()``;
    consumed by their ``resume()`` classmethods (or
    :func:`~repro.fleet.region.resume_fleet`, which dispatches on
    :attr:`kind`).  The payload stays opaque bytes until
    :meth:`state` unpickles it — every call builds a *fresh* object
    graph, so two resumes from one checkpoint never alias state.
    """

    meta: Dict[str, object] = field(repr=True)
    payload: bytes = field(repr=False)

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return str(self.meta["kind"])

    @property
    def epoch(self) -> int:
        return int(self.meta["epoch"])  # type: ignore[arg-type]

    @property
    def version(self) -> int:
        return int(self.meta["version"])  # type: ignore[arg-type]

    def state(self) -> Dict[str, object]:
        """Unpickle the payload into a fresh state dict (never cached)."""
        state = pickle.loads(self.payload)
        if not isinstance(state, dict):
            raise CheckpointError(
                f"checkpoint payload unpickled to {type(state).__name__}, "
                "expected a state dict"
            )
        return state

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, meta: Dict[str, object], state: Dict[str, object]
    ) -> "Checkpoint":
        """Validate ``meta`` and pickle ``state`` into a checkpoint."""
        meta = dict(meta)
        meta.setdefault("version", CHECKPOINT_VERSION)
        meta.setdefault("created_unix", time.time())
        validate_checkpoint_meta(meta)
        return cls(
            meta=meta,
            payload=pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def to_bytes(self) -> bytes:
        validate_checkpoint_meta(self.meta)
        meta_blob = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        return b"".join(
            (
                CHECKPOINT_MAGIC,
                _HEADER.pack(self.version, len(meta_blob)),
                meta_blob,
                self.payload,
            )
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Atomically persist the checkpoint (write-then-rename)."""
        path = Path(path)
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(path, self.to_bytes())
        return path

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Checkpoint":
        header_len = len(CHECKPOINT_MAGIC) + _HEADER.size
        if len(blob) < header_len:
            raise CheckpointError(
                f"checkpoint truncated: {len(blob)} bytes is shorter than "
                f"the {header_len}-byte header"
            )
        if blob[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
            raise CheckpointError(
                "bad magic: not a repro fleet checkpoint file"
            )
        version, meta_len = _HEADER.unpack_from(blob, len(CHECKPOINT_MAGIC))
        if version > CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version} is newer than the supported "
                f"version {CHECKPOINT_VERSION}"
            )
        if len(blob) < header_len + meta_len:
            raise CheckpointError(
                "checkpoint truncated: metadata block extends past the file"
            )
        try:
            meta = json.loads(blob[header_len : header_len + meta_len])
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"unreadable checkpoint metadata: {exc}") from exc
        validate_checkpoint_meta(meta)
        if int(meta["version"]) != version:
            raise CheckpointError(
                f"header version {version} disagrees with metadata version "
                f"{meta['version']}"
            )
        return cls(meta=meta, payload=blob[header_len + meta_len :])

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Checkpoint":
        """Read and validate a checkpoint file (header + metadata)."""
        path = Path(path)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        try:
            return cls.from_bytes(blob)
        except CheckpointError as exc:
            raise CheckpointError(f"{path.name}: {exc}") from exc


def validate_checkpoint_file(
    path: Union[str, Path], deep: bool = False
) -> Dict[str, object]:
    """Validate a checkpoint file and return its metadata.

    The shallow pass (default) checks magic, version, header integrity
    and the full metadata schema — cheap enough for CI to gate every
    produced checkpoint on.  ``deep=True`` additionally unpickles the
    payload and cross-checks it against the header: all payload keys
    present, shard inventory identical to ``meta["shard_ids"]``, and the
    ``has_lifecycle`` / ``has_summary`` flags truthful.
    """
    checkpoint = Checkpoint.load(path)
    if not deep:
        return dict(checkpoint.meta)
    name = Path(path).name
    try:
        state = checkpoint.state()
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"{name}: payload does not unpickle ({exc})") from exc
    problems: List[str] = []
    missing = sorted(set(PAYLOAD_KEYS) - set(state))
    if missing:
        problems.append(f"payload missing keys: {missing}")
    shards = state.get("shards")
    if isinstance(shards, list):
        shard_ids = [getattr(shard, "shard_id", None) for shard in shards]
        if shard_ids != list(checkpoint.meta["shard_ids"]):
            problems.append(
                "payload shard inventory disagrees with metadata shard_ids"
            )
    else:
        problems.append("payload shards: expected a list of FleetShard objects")
    if bool(checkpoint.meta["has_lifecycle"]) != (state.get("timeline") is not None):
        problems.append("has_lifecycle flag disagrees with the payload timeline")
    if bool(checkpoint.meta["has_summary"]) != (state.get("summary") is not None):
        problems.append("has_summary flag disagrees with the payload summary")
    if problems:
        raise CheckpointError(f"{name}: " + "; ".join(problems))
    return dict(checkpoint.meta)
