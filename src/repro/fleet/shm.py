"""Shared-memory columnar transport for the process shard executor.

The process strategy's epoch exchange used to pickle every decision
array and counter block through the worker pools' result pipes — cheap
per byte, but the serialisation plus chunked pipe transfer made the
single-worker process executor measurably *slower* than the serial loop
(``fleet_process_2k/10k`` in ``BENCH_fleet.json``).  This module moves
the bulk payload into :mod:`multiprocessing.shared_memory`:

* Each worker owns a **double-buffered pair of shared segments**, sized
  from its shards' VM counts (plus slack for churn).  Every columnar
  epoch the worker writes its shards' decision arrays — action codes,
  distances, sibling counts, analyzed/confirmed flags — and the
  per-shard ``N_COUNTERS`` counter-total rows into the buffer whose turn
  it is, alternating buffers epoch over epoch.
* Only a tiny :class:`ShmEpochDescriptor` (epoch, buffer index, segment
  name, per-shard row offsets/lengths, VM-name tables when the placement
  changed) crosses the pool pipe.  The parent attaches the named
  segments once and reads NumPy views straight off them.
* **Regrow handshake:** when churn grows a worker's shards past a
  buffer's capacity, the worker allocates a larger segment and the next
  descriptor names it; the parent remaps that buffer and closes+unlinks
  the replaced segment.  No pause, no renegotiation round trip.

Synchronisation is implicit in the epoch protocol: the parent drives
epochs synchronously, so the worker never rewrites a buffer until the
parent has submitted (at least) the next epoch.  Double buffering
therefore gives parent-side views a documented validity window — the
arrays of epoch ``e`` stay intact until the worker writes epoch
``e + 2``.  Callers that hold a columnar report across epochs must copy
(the hot ``Fleet.run(keep_reports=False)`` loop consumes each report
immediately).

Cleanup is owned by the parent, which always learns every live segment
name from the descriptors: :meth:`ShmBlockReader.close` (called from
``ProcessShardExecutor.shutdown`` and from a ``weakref.finalize`` at
interpreter exit) closes and **unlinks** every attached segment, so no
``/dev/shm`` entries outlive the run even when workers were killed.  A
worker that dies between creating a segment and shipping its descriptor
leaves a name no descriptor ever taught the parent; because segment
names embed the worker's pid, the executor's failure paths sweep those
orphans with :func:`unlink_worker_segments` (the
:mod:`multiprocessing` resource tracker remains the last-resort
backstop at interpreter exit for crashes of the parent itself).
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.batch import N_COUNTERS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.executor import ColumnarShardReport

#: Every segment name starts with this, so tests and CI can assert that
#: a finished run left nothing behind in ``/dev/shm``.
SEGMENT_PREFIX = "repro-fleet"

#: Default capacity slack: a new segment fits the current row count plus
#: ``max(min_slack_rows, slack_fraction * rows)`` so steady churn does
#: not regrow every epoch.
DEFAULT_SLACK_FRACTION = 0.25
DEFAULT_MIN_SLACK_ROWS = 64


def _segment_name(buffer_index: int, generation: int) -> str:
    return (
        f"{SEGMENT_PREFIX}-{os.getpid()}-b{buffer_index}"
        f"-g{generation}-{secrets.token_hex(4)}"
    )


def unlink_worker_segments(pid: int, skip: Sequence[str] = ()) -> List[str]:
    """Unlink every transport segment a worker process left behind.

    Segment names embed the creating worker's pid
    (:func:`_segment_name`), so the parent can sweep a dead worker's
    orphans by name alone — covering the regrow race where the worker
    died *between* allocating a new-generation segment and the parent
    remapping it, which previously only the resource tracker reclaimed
    at interpreter exit.  ``skip`` protects names the parent's readers
    already own (their unlink belongs to :meth:`ShmBlockReader.close`).
    Unlinking only removes the ``/dev/shm`` name: existing mappings
    (the parent's attached views, a not-yet-dead worker's buffers) stay
    valid until their owners drop them.  Returns the unlinked names.
    """
    prefix = f"{SEGMENT_PREFIX}-{pid}-"
    skipped = set(skip)
    removed: List[str] = []
    for name in leaked_segments():
        if not name.startswith(prefix) or name in skipped:
            continue
        try:
            segment = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            continue
        _release_segment(segment)
        removed.append(name)
    return removed


def leaked_segments() -> List[str]:
    """Names of fleet transport segments currently present in /dev/shm.

    Empty after every clean or killed-worker run; non-empty means a
    cleanup bug (asserted by the tests and the CI bench-smoke leg).  On
    platforms without a /dev/shm filesystem the probe returns [].
    """
    shm_dir = "/dev/shm"
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(SEGMENT_PREFIX))


@dataclass(frozen=True)
class BlockLayout:
    """Byte layout of one columnar buffer.

    Arrays are laid out back to back in descending alignment order
    (float64 first, single-byte flags last), so every view is naturally
    aligned without padding.  ``capacity_rows`` bounds the total
    observation rows across the worker's shards; the ``n_shards``
    counter-total rows are a fixed block (shard groups never change
    membership mid-run).
    """

    capacity_rows: int
    n_shards: int

    @property
    def nbytes(self) -> int:
        # distances f8 + 2x siblings i4 + action i1 + 2x flag bool = 19
        return 19 * self.capacity_rows + 8 * self.n_shards * N_COUNTERS

    def views(self, buf: memoryview) -> Dict[str, np.ndarray]:
        """Named array views over ``buf`` (shared by writer and reader)."""
        rows, shards = self.capacity_rows, self.n_shards
        out: Dict[str, np.ndarray] = {}
        offset = 0
        out["distances"] = np.ndarray(
            (rows,), dtype=np.float64, buffer=buf, offset=offset
        )
        offset += 8 * rows
        out["counter_totals"] = np.ndarray(
            (shards, N_COUNTERS), dtype=np.float64, buffer=buf, offset=offset
        )
        offset += 8 * shards * N_COUNTERS
        out["siblings_consulted"] = np.ndarray(
            (rows,), dtype=np.int32, buffer=buf, offset=offset
        )
        offset += 4 * rows
        out["siblings_agreeing"] = np.ndarray(
            (rows,), dtype=np.int32, buffer=buf, offset=offset
        )
        offset += 4 * rows
        out["action_codes"] = np.ndarray(
            (rows,), dtype=np.int8, buffer=buf, offset=offset
        )
        offset += rows
        out["analyzed"] = np.ndarray(
            (rows,), dtype=np.bool_, buffer=buf, offset=offset
        )
        offset += rows
        out["confirmed"] = np.ndarray(
            (rows,), dtype=np.bool_, buffer=buf, offset=offset
        )
        return out


@dataclass(frozen=True)
class ShardSlot:
    """One shard's rows inside an epoch buffer.

    ``counter_totals`` rows are indexed by the slot's position in the
    descriptor (worker shard order is stable for the whole run).
    ``vm_names`` is ``None`` when the shard's VM set is unchanged since
    the previously shipped epoch — the parent rehydrates from its cache.
    """

    shard_id: str
    start: int
    rows: int
    has_counters: bool
    vm_names: Optional[Tuple[str, ...]]


@dataclass(frozen=True)
class ShmEpochDescriptor:
    """The only per-epoch payload that crosses the pool pipe.

    Names the buffer (and, after a regrow, the fresh segment) holding
    the epoch's columnar results, plus per-shard row extents.

    ``spans`` carries the worker's drained telemetry spans —
    ``(kind_code, start, duration, epoch)`` tuples from its
    :class:`~repro.fleet.telemetry.WorkerSpanBuffer` — empty whenever
    telemetry is off, so the descriptor stays descriptor-sized.
    """

    epoch: int
    buffer_index: int
    segment: str
    capacity_rows: int
    n_shards: int
    slots: Tuple[ShardSlot, ...]
    spans: Tuple[Tuple[int, float, float, int], ...] = ()


class ShmBlockWriter:
    """Worker-side double-buffered segment writer.

    Created lazily on the first columnar epoch (by then churn may
    already have changed the shard sizes the segments are sized from).
    ``write`` alternates buffers and regrows the active buffer's segment
    when the shards outgrew it; replaced segments are closed locally and
    unlinked by the parent once the descriptor names the successor.
    """

    def __init__(
        self,
        n_shards: int,
        slack_fraction: float = DEFAULT_SLACK_FRACTION,
        min_slack_rows: int = DEFAULT_MIN_SLACK_ROWS,
    ) -> None:
        self._n_shards = n_shards
        self._slack_fraction = slack_fraction
        self._min_slack_rows = min_slack_rows
        self._segments: List[Optional[shared_memory.SharedMemory]] = [None, None]
        self._layouts: List[Optional[BlockLayout]] = [None, None]
        self._views: List[Optional[Dict[str, np.ndarray]]] = [None, None]
        self._next = 0
        self._generation = 0

    def _ensure_capacity(self, index: int, rows: int) -> None:
        layout = self._layouts[index]
        if layout is not None and layout.capacity_rows >= rows:
            return
        slack = max(self._min_slack_rows, int(rows * self._slack_fraction))
        new_layout = BlockLayout(max(rows + slack, 1), self._n_shards)
        self._generation += 1
        segment = shared_memory.SharedMemory(
            name=_segment_name(index, self._generation),
            create=True,
            size=new_layout.nbytes,
        )
        old = self._segments[index]
        if old is not None:
            # Drop the local views before closing (they hold buffer
            # exports); the *parent* unlinks the replaced segment when
            # the next descriptor names the successor.
            self._views[index] = None
            old.close()
        self._segments[index] = segment
        self._layouts[index] = new_layout
        self._views[index] = new_layout.views(segment.buf)

    def write(
        self, epoch: int, reports: Sequence["ColumnarShardReport"]
    ) -> ShmEpochDescriptor:
        """Write one epoch's shard reports in place; return the descriptor."""
        index = self._next
        self._next = 1 - self._next
        total_rows = sum(int(r.action_codes.shape[0]) for r in reports)
        self._ensure_capacity(index, total_rows)
        views = self._views[index]
        slots: List[ShardSlot] = []
        pos = 0
        for i, report in enumerate(reports):
            rows = int(report.action_codes.shape[0])
            end = pos + rows
            views["action_codes"][pos:end] = report.action_codes
            views["distances"][pos:end] = report.distances
            views["siblings_consulted"][pos:end] = report.siblings_consulted
            views["siblings_agreeing"][pos:end] = report.siblings_agreeing
            views["analyzed"][pos:end] = report.analyzed
            views["confirmed"][pos:end] = report.confirmed
            has_counters = report.counter_totals is not None
            if has_counters:
                views["counter_totals"][i] = report.counter_totals
            slots.append(
                ShardSlot(
                    shard_id=report.shard_id,
                    start=pos,
                    rows=rows,
                    has_counters=has_counters,
                    vm_names=report.vm_names,
                )
            )
            pos = end
        return ShmEpochDescriptor(
            epoch=epoch,
            buffer_index=index,
            segment=self._segments[index].name,
            capacity_rows=self._layouts[index].capacity_rows,
            n_shards=self._n_shards,
            slots=tuple(slots),
        )

    def close(self) -> None:
        """Release the worker's local segment handles (no unlink)."""
        for index in (0, 1):
            segment = self._segments[index]
            self._views[index] = None
            self._segments[index] = None
            self._layouts[index] = None
            if segment is not None:
                try:
                    segment.close()
                except BufferError:  # pragma: no cover - defensive
                    pass


def _release_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink one attached segment, tolerating held views.

    If a caller still holds report views into the buffer, ``close``
    raises :class:`BufferError`; the mapping then simply stays alive
    until those arrays die, but the name is removed from ``/dev/shm``
    either way — the leak guarantee is about names, the OS frees the
    memory with the last mapping.
    """
    try:
        segment.close()
    except BufferError:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - defensive
        pass


class ShmBlockReader:
    """Parent-side attachment to one worker's double-buffered segments.

    Attaches segments as descriptors name them, remaps (and unlinks the
    predecessor) on regrow, and serves per-shard
    :class:`~repro.fleet.executor.ColumnarShardReport` views.
    """

    def __init__(self) -> None:
        self._segments: Dict[int, shared_memory.SharedMemory] = {}
        self._views: Dict[int, Dict[str, np.ndarray]] = {}
        #: Regrow handshakes served so far (telemetry reads the delta).
        self.regrows = 0

    def segment_names(self) -> List[str]:
        return sorted(s.name for s in self._segments.values())

    def read(
        self, descriptor: ShmEpochDescriptor
    ) -> List[Tuple[str, "ColumnarShardReport"]]:
        """Views of one epoch's shard reports, in worker shard order."""
        from repro.fleet.executor import ColumnarShardReport

        index = descriptor.buffer_index
        attached = self._segments.get(index)
        if attached is None or attached.name != descriptor.segment:
            segment = shared_memory.SharedMemory(name=descriptor.segment)
            if attached is not None:
                # Regrow handshake: the worker switched this buffer to a
                # larger segment; drop and unlink the replaced one.
                self._views.pop(index, None)
                _release_segment(attached)
                self.regrows += 1
            self._segments[index] = segment
            self._views[index] = BlockLayout(
                descriptor.capacity_rows, descriptor.n_shards
            ).views(segment.buf)
        views = self._views[index]
        out: List[Tuple[str, "ColumnarShardReport"]] = []
        for i, slot in enumerate(descriptor.slots):
            rows = slice(slot.start, slot.start + slot.rows)
            out.append(
                (
                    slot.shard_id,
                    ColumnarShardReport(
                        shard_id=slot.shard_id,
                        epoch=descriptor.epoch,
                        vm_names=slot.vm_names,
                        action_codes=views["action_codes"][rows],
                        distances=views["distances"][rows],
                        siblings_consulted=views["siblings_consulted"][rows],
                        siblings_agreeing=views["siblings_agreeing"][rows],
                        analyzed=views["analyzed"][rows],
                        confirmed=views["confirmed"][rows],
                        counter_totals=(
                            views["counter_totals"][i]
                            if slot.has_counters
                            else None
                        ),
                    ),
                )
            )
        return out

    def close(self) -> None:
        """Close and unlink every attached segment (idempotent)."""
        segments = list(self._segments.values())
        self._segments.clear()
        self._views.clear()
        for segment in segments:
            _release_segment(segment)


def close_readers(readers: Sequence[ShmBlockReader]) -> None:
    """Module-level cleanup hook, safe to hand to ``weakref.finalize``."""
    for reader in readers:
        reader.close()
