"""The unified fleet run surface: options, streaming, one protocol.

PRs 2-7 grew the run API by accretion: ``run_epoch(report=...)``,
``run(keep_reports=False)``, ``run_summaries(shutdown_regions=True)`` —
split between :class:`~repro.fleet.fleet.Fleet` and
:class:`~repro.fleet.region.RegionalFleet` with subtly duplicated hot
loops.  This module is the redesign: both fleet kinds implement one
documented :class:`FleetRuntime` surface, configured by a typed
:class:`RunOptions`, and built on a single primitive —
:meth:`FleetRuntimeBase.stream`, an epoch-streaming iterator that yields
one report per epoch without buffering the run.  ``run`` and
``run_epoch`` are thin reimplementations on the stream; the legacy
``report=`` / ``keep_reports=`` keywords survive as deprecation shims
that translate into :class:`RunOptions` (one :class:`DeprecationWarning`
each, with the migration spelled out).

The ``"auto"`` report mode encodes the PR 6/7 hot-loop heuristic as
data: streamed (unbuffered) epochs travel columnar under the process
executor except for the final epoch, which materialises a full report
(the steady-state snapshot a summary keeps); buffered runs and
non-process executors resolve to full reports.  Columnar reports from a
process fleet are shared-memory views valid for two further columnar
epochs — exactly why ``"auto"`` never hands them to a buffering caller.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.checkpoint import Checkpoint
    from repro.fleet.executor import ColumnarFleetReport
    from repro.fleet.fleet import FleetEpochReport, FleetRunSummary

#: Report modes accepted by :class:`RunOptions`.
REPORT_MODES = ("full", "columnar", "auto")

#: A fleet-wide epoch report of either kind (both expose the same
#: aggregate API, so summaries and dashboards consume them alike).
FleetReport = Union["FleetEpochReport", "ColumnarFleetReport"]


@dataclass(frozen=True)
class RunOptions:
    """Typed per-run configuration shared by every :class:`FleetRuntime`.

    Replaces the ``report=`` / ``keep_reports=`` keyword zoo; instances
    are immutable and reusable across calls.

    Parameters
    ----------
    analyze:
        Whether warning suspicions may invoke the analyzer.
    report:
        ``"full"`` — per-VM :class:`~repro.fleet.fleet.FleetEpochReport`
        every epoch; ``"columnar"`` — flat decision arrays
        (:class:`~repro.fleet.executor.ColumnarFleetReport`, the process
        executor's native exchange format); ``"auto"`` (default) — the
        right one per epoch: streamed epochs under the process executor
        travel columnar except the last (which is full), everything else
        resolves to full.
    keep_reports:
        Only read by :meth:`FleetRuntimeBase.run`: ``True`` buffers one
        report per epoch, ``False`` folds the stream into a
        constant-memory :class:`~repro.fleet.fleet.FleetRunSummary`.
    """

    analyze: bool = True
    report: str = "auto"
    keep_reports: bool = True

    def __post_init__(self) -> None:
        if self.report not in REPORT_MODES:
            raise ValueError(
                f"unknown report mode {self.report!r}; choose from {REPORT_MODES}"
            )


def _coerce_options(
    options: Optional[RunOptions],
    analyze: Optional[bool] = None,
    report: Optional[str] = None,
    keep_reports: Optional[bool] = None,
    stacklevel: int = 3,
) -> RunOptions:
    """Translate a call site into one :class:`RunOptions`.

    New-style calls pass ``options`` (legacy keywords then refused, so a
    call can't silently mean two things); legacy calls pass the old
    keywords, of which ``report=`` and ``keep_reports=`` warn with their
    migration, while ``analyze=`` stays a supported convenience alias.
    """
    legacy: Dict[str, object] = {}
    if analyze is not None:
        legacy["analyze"] = analyze
    if report is not None:
        legacy["report"] = report
    if keep_reports is not None:
        legacy["keep_reports"] = keep_reports
    if options is not None:
        if legacy:
            raise TypeError(
                "pass either options=RunOptions(...) or the legacy "
                f"keyword(s) {sorted(legacy)}, not both"
            )
        if not isinstance(options, RunOptions):
            raise TypeError(
                f"options must be a RunOptions, got {type(options).__name__}"
            )
        return options
    if "report" in legacy:
        warnings.warn(
            "the report= keyword is deprecated; pass "
            f'options=RunOptions(report="{legacy["report"]}") instead',
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    if "keep_reports" in legacy:
        warnings.warn(
            "the keep_reports= keyword is deprecated; pass "
            f"options=RunOptions(keep_reports={legacy['keep_reports']}) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    return RunOptions(**legacy)  # type: ignore[arg-type]


def _resolve_report(
    options: RunOptions, executor: str, index: int, epochs: int
) -> str:
    """The concrete report mode of one streamed (unbuffered) epoch."""
    if options.report != "auto":
        return options.report
    if executor == "process" and index < epochs - 1:
        return "columnar"
    return "full"


@runtime_checkable
class FleetRuntime(Protocol):
    """The one operable control surface of a long-lived fleet.

    Implemented identically by :class:`~repro.fleet.fleet.Fleet` and
    :class:`~repro.fleet.region.RegionalFleet` (both satisfy
    ``isinstance(obj, FleetRuntime)``), so service code — the campaign
    runner, the ops dashboard, ``examples/run_service.py`` — drives
    either without caring about the shard topology underneath:

    * ``bootstrap()`` — learn the loaded applications' normal behaviour;
    * ``stream(epochs, options)`` — the primitive: an iterator yielding
      one epoch report at a time, nothing buffered;
    * ``run(epochs, options)`` / ``run_epoch(options)`` — conveniences
      reimplemented on the stream;
    * ``snapshot(path)`` / ``Fleet.resume(path)`` — checkpoint the live
      state into a versioned :class:`~repro.fleet.checkpoint.Checkpoint`
      and rebuild a fleet that continues bit-identically;
    * ``stats()`` / ``lifecycle_stats()`` / ``detections()`` /
      ``migrations()`` — operator telemetry, wherever the state lives;
    * ``shutdown()`` — idempotent worker release (safe after failures).
    """

    executor: str
    current_epoch: int

    def bootstrap(self) -> None: ...

    def stream(
        self, epochs: int, options: Optional[RunOptions] = None
    ) -> Iterator[FleetReport]: ...

    def run(
        self, epochs: int, options: Optional[RunOptions] = None
    ) -> Union[List[FleetReport], "FleetRunSummary"]: ...

    def run_epoch(self, options: Optional[RunOptions] = None) -> FleetReport: ...

    def snapshot(
        self,
        path: Optional[object] = None,
        *,
        summary: Optional["FleetRunSummary"] = None,
        extra: Optional[object] = None,
    ) -> "Checkpoint": ...

    def shutdown(self) -> None: ...

    def stats(self) -> Dict[str, float]: ...

    def lifecycle_stats(self) -> Dict[str, Dict[str, int]]: ...


class FleetRuntimeBase:
    """Shared implementation of the :class:`FleetRuntime` run surface.

    Subclasses provide the topology (``executor``, ``current_epoch``,
    ``shutdown``, statistics) plus one primitive —
    ``_step_epoch(analyze, report)``, advancing every shard by a single
    epoch — and inherit the whole streaming surface: ``stream`` drives
    ``_step_epoch`` per epoch, and ``run`` / ``run_epoch`` are
    reimplemented on ``stream`` (one code path, flat or regional).

    ``stream`` is also where run-level telemetry lives: when the
    subclass carries a :class:`~repro.fleet.telemetry.TelemetryRegistry`
    (``self.telemetry``), each ``_step_epoch`` is wrapped in an
    ``epoch`` span and the epoch / VM-epoch counters are bumped here —
    once per fleet-wide epoch, whichever topology runs underneath (a
    regional fleet steps its inner fleets' ``_step_epoch`` directly, so
    nothing double-counts).
    """

    executor: str
    current_epoch: int
    #: Telemetry bus, or ``None`` (off) — set by subclasses that
    #: support instrumentation.
    telemetry = None

    def _step_epoch(
        self, analyze: bool, report: str
    ) -> FleetReport:  # pragma: no cover - abstract
        raise NotImplementedError

    def shutdown(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    def stream(
        self, epochs: int, options: Optional[RunOptions] = None
    ) -> Iterator[FleetReport]:
        """Advance the fleet epoch by epoch, yielding each report.

        The single primitive every other run entry point builds on:
        nothing is buffered, so a stream consumes constant memory for
        any run length — fold reports into running aggregates (a
        :class:`~repro.fleet.fleet.FleetRunSummary`, a dashboard) as
        they arrive.  With ``report="auto"`` (default) epochs under the
        process executor travel as columnar shared-memory views (valid
        for two further columnar epochs — consume promptly or copy) and
        the final epoch materialises a full report; other executors
        stream full reports throughout.

        The stream is lazy: epochs run as the iterator is advanced, and
        abandoning it mid-run simply stops the clock — the fleet can
        stream again, snapshot, or shut down afterwards.
        """
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        options = _coerce_options(options)

        def _generate() -> Iterator[FleetReport]:
            from repro.fleet.telemetry import C_EPOCHS, C_VM_EPOCHS

            for i in range(epochs):
                mode = _resolve_report(options, self.executor, i, epochs)
                telemetry = self.telemetry
                if telemetry is None:
                    yield self._step_epoch(analyze=options.analyze, report=mode)
                    continue
                with telemetry.span("epoch", self.current_epoch):
                    report = self._step_epoch(
                        analyze=options.analyze, report=mode
                    )
                telemetry.inc(C_EPOCHS)
                telemetry.inc(C_VM_EPOCHS, report.observations())
                yield report

        return _generate()

    def run_epoch(
        self,
        options: Optional[RunOptions] = None,
        *,
        analyze: Optional[bool] = None,
        report: Optional[str] = None,
    ) -> FleetReport:
        """Advance the whole fleet by one epoch (``stream(1)``).

        Accepts the legacy ``report=`` keyword as a deprecation shim;
        new code passes ``options=RunOptions(report=...)``.  A single
        ``"auto"`` epoch is its own final epoch, so it resolves to a
        full report.
        """
        options = _coerce_options(options, analyze, report, None)
        stream = self.stream(1, options)
        try:
            return next(stream)
        finally:
            stream.close()

    def run(
        self,
        epochs: int,
        options: Optional[RunOptions] = None,
        *,
        analyze: Optional[bool] = None,
        keep_reports: Optional[bool] = None,
    ) -> Union[List[FleetReport], "FleetRunSummary"]:
        """Run several epochs off one stream.

        With ``options.keep_reports=True`` (default) the stream is
        buffered into one report per epoch (``"auto"`` then resolves to
        full reports — columnar shared-memory views must not outlive
        their validity window in a buffer).  With ``keep_reports=False``
        the stream folds into a constant-memory
        :class:`~repro.fleet.fleet.FleetRunSummary`; under the process
        executor ``"auto"`` then keeps the PR 6 hot loop — columnar
        intermediates, one full final epoch.  The legacy
        ``keep_reports=`` keyword survives as a deprecation shim.
        """
        from repro.fleet.fleet import FleetRunSummary

        options = _coerce_options(options, analyze, None, keep_reports)
        if options.keep_reports:
            if options.report == "auto":
                options = replace(options, report="full")
            return list(self.stream(epochs, options))
        summary = FleetRunSummary()
        for report in self.stream(epochs, options):
            summary.accumulate(report)
        return summary

    # ------------------------------------------------------------------
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()
