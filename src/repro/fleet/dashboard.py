"""Live ops dashboard for a streaming fleet service.

The dashboard is a pure *consumer* of the
:class:`~repro.fleet.runtime.FleetRuntime` stream: it folds each epoch
report into rolling operator telemetry — per-shard and per-region
throughput, churn and admission counters, detections, drain status and
health alerts — and renders either an auto-refreshing terminal view
(:meth:`FleetDashboard.render`) or a JSON document
(:meth:`FleetDashboard.snapshot`) for scraping.  It never buffers
reports and never drives the simulation itself, so watching a fleet
costs O(shards) memory whatever the run length, and both report kinds
(full and columnar) feed it equally — exactly what
``examples/run_service.py`` wires together.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.fleet.runtime import FleetReport, FleetRuntime, RunOptions


def _shard_numbers(shard_report: object) -> Dict[str, int]:
    """One shard report (full or columnar) as plain counters.

    Both kinds expose ``analyzer_invocations()``; observation and
    confirmation counts differ in shape (a dict of per-VM observations
    vs. flat arrays), which this adapter hides from the dashboard.
    """
    observations = getattr(shard_report, "observations")
    if callable(observations):  # ColumnarShardReport
        return {
            "observations": int(shard_report.observations()),
            "analyzer_invocations": int(shard_report.analyzer_invocations()),
            "confirmed": int(shard_report.confirmed_count()),
        }
    return {  # core EpochReport: observations is a per-VM dict
        "observations": len(observations),
        "analyzer_invocations": int(shard_report.analyzer_invocations()),
        "confirmed": len(shard_report.confirmed_interference()),
    }


class FleetDashboard:
    """Rolling operator view over one fleet's epoch stream.

    Parameters
    ----------
    fleet:
        Any :class:`~repro.fleet.runtime.FleetRuntime` — flat or
        regional; a regional fleet additionally gets per-region rows.
    slo_epoch_seconds:
        Epoch wall-time SLO; epochs above it raise a health alert and
        are counted in ``slo_violations``.
    rejection_alert_fraction:
        Alert when the admission-rejection fraction (rejected /
        attempted arrivals) exceeds this.
    window:
        How many recent epoch wall-times the throughput figures average
        over (the dashboard's only per-epoch storage).
    """

    def __init__(
        self,
        fleet: FleetRuntime,
        *,
        slo_epoch_seconds: Optional[float] = None,
        rejection_alert_fraction: float = 0.25,
        window: int = 64,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.fleet = fleet
        self.slo_epoch_seconds = slo_epoch_seconds
        self.rejection_alert_fraction = rejection_alert_fraction
        self.epochs_observed = 0
        self.slo_violations = 0
        self.total_observations = 0
        self.total_analyzer_invocations = 0
        self.total_confirmed = 0
        self._epoch_seconds: Deque[float] = deque(maxlen=window)
        self._last_shards: Dict[str, Dict[str, int]] = {}
        #: region id -> shard ids, when the fleet is hierarchical.
        fleets = getattr(fleet, "fleets", None)
        self._regions: Optional[Dict[str, List[str]]] = (
            {rid: list(inner.shards) for rid, inner in fleets.items()}
            if fleets
            else None
        )

    # ------------------------------------------------------------------
    def observe(
        self, report: FleetReport, epoch_seconds: Optional[float] = None
    ) -> None:
        """Fold one epoch report into the rolling telemetry."""
        self.epochs_observed += 1
        self._last_shards = {
            shard_id: _shard_numbers(shard_report)
            for shard_id, shard_report in report.shard_reports.items()
        }
        for numbers in self._last_shards.values():
            self.total_observations += numbers["observations"]
            self.total_analyzer_invocations += numbers["analyzer_invocations"]
            self.total_confirmed += numbers["confirmed"]
        if epoch_seconds is not None:
            self._epoch_seconds.append(float(epoch_seconds))
            if (
                self.slo_epoch_seconds is not None
                and epoch_seconds > self.slo_epoch_seconds
            ):
                self.slo_violations += 1

    def watch(
        self, epochs: int, options: Optional[RunOptions] = None
    ) -> Iterator[FleetReport]:
        """Stream the fleet through the dashboard, timing every epoch.

        A thin wrapper over ``fleet.stream``: each epoch is timed,
        observed, and then yielded onward — so a service loop renders
        between epochs while the dashboard stays current, and abandoning
        the iterator stops the clock exactly like abandoning the stream.

        A telemetry-carrying fleet is timed from its own recorded
        ``epoch`` spans (the producer's clock) rather than this
        consumer's wall clock, so the throughput panel excludes whatever
        the service loop does between epochs — rendering, scrape
        serving, sleeping.  Fleets without telemetry keep the consumer
        wall clock.
        """
        registry = getattr(self.fleet, "telemetry", None)
        stream = self.fleet.stream(epochs, options)
        while True:
            seq_before = registry.epoch_span_seq if registry is not None else 0
            t0 = time.perf_counter()
            try:
                report = next(stream)
            except StopIteration:
                return
            elapsed = time.perf_counter() - t0
            if (
                registry is not None
                and registry.epoch_span_seq > seq_before
                and registry.last_epoch_duration is not None
            ):
                elapsed = registry.last_epoch_duration
            self.observe(report, epoch_seconds=elapsed)
            yield report

    # ------------------------------------------------------------------
    def _lifecycle_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for shard_stats in self.fleet.lifecycle_stats().values():
            for key, value in shard_stats.items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals

    def _worker_health(self) -> List[Dict[str, object]]:
        """The fleet's per-worker health rows (empty when unsupported).

        Served via duck typing so the dashboard keeps working against
        any :class:`~repro.fleet.runtime.FleetRuntime`, supervised or
        not — and against a fleet too broken to answer.
        """
        health = getattr(self.fleet, "worker_health", None)
        if not callable(health):
            return []
        try:
            return list(health())
        except RuntimeError:
            return []

    def alerts(self) -> List[str]:
        """Current health alerts (empty when the fleet looks healthy)."""
        alerts: List[str] = []
        workers = self._worker_health()
        restarted = [row for row in workers if row.get("restarts", 0)]
        if restarted:
            total = sum(int(row["restarts"]) for row in restarted)
            worker_ids = ", ".join(
                str(row.get("worker", "?")) for row in restarted
            )
            alerts.append(
                f"WORKER_RESTARTED: {total} restart(s) across "
                f"worker(s) {worker_ids}"
            )
        quarantined = [row for row in workers if row.get("quarantined")]
        if quarantined:
            shard_count = sum(len(row.get("shards", ())) for row in quarantined)
            worker_ids = ", ".join(
                str(row.get("worker", "?")) for row in quarantined
            )
            alerts.append(
                f"SHARDS_QUARANTINED: {shard_count} shard(s) excluded "
                f"(worker(s) {worker_ids}); the run is degraded"
            )
        if (
            self.slo_epoch_seconds is not None
            and self._epoch_seconds
            and self._epoch_seconds[-1] > self.slo_epoch_seconds
        ):
            alerts.append(
                f"SLO: last epoch took {self._epoch_seconds[-1]:.3f}s "
                f"(> {self.slo_epoch_seconds:.3f}s)"
            )
        lifecycle = self._lifecycle_totals()
        stranded = lifecycle.get("drain_stranded", 0)
        if stranded:
            alerts.append(f"drain: {stranded} VM(s) stranded on draining hosts")
        active_drains = lifecycle.get("drains", 0) - lifecycle.get("returns", 0)
        if active_drains > 0:
            alerts.append(f"drain: {active_drains} host(s) currently draining")
        admitted = lifecycle.get("arrivals_admitted", 0)
        rejected = lifecycle.get("arrivals_rejected", 0)
        attempted = admitted + rejected
        if attempted:
            fraction = rejected / attempted
            if fraction > self.rejection_alert_fraction:
                alerts.append(
                    f"admission: {fraction:.0%} of arrivals rejected "
                    f"({rejected}/{attempted})"
                )
        return alerts

    def snapshot(self) -> Dict[str, object]:
        """The whole dashboard as one JSON-able document.

        Fleet-wide statistics come from wherever the shard state lives;
        if the fleet can no longer answer (workers died), the document
        degrades to the dashboard's own rolling totals and carries a
        health alert instead of raising.
        """
        alerts = self.alerts()
        try:
            stats = {k: float(v) for k, v in self.fleet.stats().items()}
        except RuntimeError as exc:
            stats = None
            alerts = alerts + [f"stats unavailable: {exc}"]
        window = list(self._epoch_seconds)
        mean_seconds = sum(window) / len(window) if window else None
        last_observations = sum(
            numbers["observations"] for numbers in self._last_shards.values()
        )
        per_region: Optional[Dict[str, Dict[str, int]]] = None
        if self._regions is not None:
            per_region = {}
            for region_id, shard_ids in self._regions.items():
                rolled: Dict[str, int] = {
                    "observations": 0,
                    "analyzer_invocations": 0,
                    "confirmed": 0,
                }
                for shard_id in shard_ids:
                    for key, value in self._last_shards.get(shard_id, {}).items():
                        rolled[key] += value
                per_region[region_id] = rolled
        return {
            "epoch": int(self.fleet.current_epoch),
            "executor": self.fleet.executor,
            "epochs_observed": self.epochs_observed,
            "throughput": {
                "last_epoch_seconds": window[-1] if window else None,
                "mean_epoch_seconds": mean_seconds,
                "vm_epochs_per_second": (
                    last_observations / mean_seconds
                    if mean_seconds
                    else None
                ),
            },
            "totals": {
                "observations": self.total_observations,
                "analyzer_invocations": self.total_analyzer_invocations,
                "confirmed": self.total_confirmed,
            },
            "stats": stats,
            "lifecycle": self._lifecycle_totals(),
            "workers": self._worker_health(),
            "per_shard": {k: dict(v) for k, v in self._last_shards.items()},
            "per_region": per_region,
            "slo": {
                "epoch_seconds": self.slo_epoch_seconds,
                "violations": self.slo_violations,
            },
            "alerts": alerts,
        }

    def render(self) -> str:
        """The snapshot as a fixed-width terminal view."""
        doc = self.snapshot()
        throughput = doc["throughput"]
        lines: List[str] = []
        lines.append(
            f"fleet @ epoch {doc['epoch']}  "
            f"executor={doc['executor']}  observed={doc['epochs_observed']}"
        )
        if throughput["last_epoch_seconds"] is not None:
            rate = throughput["vm_epochs_per_second"]
            lines.append(
                f"epoch time {throughput['last_epoch_seconds']:.3f}s "
                f"(mean {throughput['mean_epoch_seconds']:.3f}s)"
                + (f"  {rate:,.0f} vm-epochs/s" if rate else "")
            )
        totals = doc["totals"]
        lines.append(
            f"totals: obs={totals['observations']:,}  "
            f"analyzer={totals['analyzer_invocations']:,}  "
            f"confirmed={totals['confirmed']:,}"
        )
        if doc["stats"] is not None:
            stats = doc["stats"]
            lines.append(
                f"fleet:  vms={stats.get('vms', 0):,.0f}  "
                f"detections={stats.get('detections', 0):,.0f}  "
                f"migrations={stats.get('migrations', 0):,.0f}"
            )
        lifecycle = doc["lifecycle"]
        if lifecycle:
            lines.append(
                "churn:  admitted={arrivals_admitted}  "
                "rejected={arrivals_rejected}  departures={departures}  "
                "drains={drains}/{returns} back".format(
                    **{
                        k: lifecycle.get(k, 0)
                        for k in (
                            "arrivals_admitted",
                            "arrivals_rejected",
                            "departures",
                            "drains",
                            "returns",
                        )
                    }
                )
            )
        workers = doc["workers"]
        if workers:
            lines.append(
                f"{'worker':>10}  {'pid':>8}  {'restarts':>8}  "
                f"{'beat age':>9}  {'state':>12}"
            )
            for row in workers:
                worker_id = row.get("worker", "?")
                if "region" in row:
                    worker_id = f"{row['region']}/{worker_id}"
                age = row.get("last_heartbeat_age_seconds")
                state = (
                    "quarantined"
                    if row.get("quarantined")
                    else "alive"
                    if row.get("alive")
                    else "dead"
                )
                lines.append(
                    f"{str(worker_id):>10}  {str(row.get('pid', '-')):>8}  "
                    f"{int(row.get('restarts', 0)):>8}  "
                    f"{(f'{age:.1f}s' if age is not None else '-'):>9}  "
                    f"{state:>12}"
                )
        rows = doc["per_region"] if doc["per_region"] else doc["per_shard"]
        label = "region" if doc["per_region"] else "shard"
        if rows:
            lines.append(f"{label:>10}  {'obs':>8}  {'analyzer':>8}  {'confirmed':>9}")
            for row_id, numbers in rows.items():
                lines.append(
                    f"{row_id:>10}  {numbers['observations']:>8,}  "
                    f"{numbers['analyzer_invocations']:>8,}  "
                    f"{numbers['confirmed']:>9,}"
                )
        for alert in doc["alerts"]:
            lines.append(f"ALERT: {alert}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """:meth:`snapshot` serialised (the scrape endpoint's body)."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the fleet's telemetry registry.

        Fleet-level statistics (VMs, hosts, detections, migrations, …)
        are refreshed into the registry's gauges first, so a scrape sees
        both the hot-loop counters/spans and the current fleet shape.
        Returns a comment-only document when the fleet carries no
        telemetry — a scrape endpoint stays servable either way.
        """
        registry = getattr(self.fleet, "telemetry", None)
        if registry is None:
            return "# telemetry disabled\n"
        try:
            for key, value in self.fleet.stats().items():
                registry.set_gauge(key, float(value))
        except RuntimeError:
            pass  # a broken fleet still exposes its counters and spans
        registry.set_gauge("dashboard_epochs_observed", self.epochs_observed)
        registry.set_gauge("dashboard_slo_violations", self.slo_violations)
        return registry.render_prometheus()
