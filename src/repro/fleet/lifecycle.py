"""The fleet lifecycle engine: executes timelines against live shards.

The :class:`LifecycleEngine` turns a compiled
:class:`~repro.fleet.timeline.FleetTimeline` into operational dynamics:
before each simulation epoch it applies that epoch's event batch to the
shards it owns — departures, host drains/returns, load-phase and
flash-crowd changes, then arrivals.  Everything it does is a
deterministic function of the timeline and the shard state, so identical
timelines evolve identically across hardware substrates, history modes
and executor strategies (the engine is pickled into process workers
alongside their shard subset, exactly like the stress schedule).

Interference-aware admission
----------------------------
Arrivals (and drain evacuations) are placed by an admission policy built
on :func:`repro.core.placement.contention_scores`: every candidate host
is scored by the degradation its resident VMs *plus the newcomer* would
suffer under proportional sharing of the five contended resources (CPU,
shared cache, memory bus, disk, NIC).  Pressures are derived from the
workloads' packed **demand rows at nominal load**, scaled linearly by
each VM's current offered-load fraction — a deliberate, documented proxy
(demands are pure functions of the load, so the scores are bit-identical
across substrates and executors, which full sandbox profiling could not
guarantee cheaply).  Headroom and anti-affinity are respected: hosts
must keep ``headroom_vcpus`` spare after admission, and workloads listed
in ``anti_affinity`` are never co-located with their own kind.
Candidates rank by ``(score, -free vCPUs, host order)``, so ties break
toward headroom and the ranking is fully deterministic.

Failure modes are explicit: an event referencing an unknown shard, VM or
host raises :class:`ValueError` naming the offending epoch and event
(never a downstream ``KeyError``); an arrival no host can accept within
``max_predicted_degradation`` is *rejected* (counted, not crashed) —
cloud admission control — while drain evacuations are forced moves:
headroom and anti-affinity are waived (a temporary soft-constraint
violation beats leaving a tenant on an out-of-service host) and a VM is
stranded only when no host can physically fit it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.placement import (
    CandidateEvaluation,
    PlacementDecision,
    contention_scores,
)
from repro.fleet.timeline import (
    EpochBatch,
    FleetTimeline,
    HostDrain,
    HostReturn,
    VMArrival,
    VMDeparture,
)
from repro.hardware.batch import DEMAND_FIELD_INDEX, pack_demand
from repro.virt.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.fleet import FleetShard
    from repro.virt.vmm import Host

#: Resource columns of the admission pressure/capacity matrices.
ADMISSION_RESOURCES: Tuple[str, ...] = (
    "instructions",
    "cache_mb",
    "bus_mb",
    "disk_mb",
    "network_mbit",
)

_I_INST = DEMAND_FIELD_INDEX["instructions"]
_I_WS = DEMAND_FIELD_INDEX["working_set_mb"]
_I_L1MISS = DEMAND_FIELD_INDEX["l1_miss_pki"]
_I_DISK = DEMAND_FIELD_INDEX["disk_mb"]
_I_NET = DEMAND_FIELD_INDEX["network_mbit"]
_I_WRITE = DEMAND_FIELD_INDEX["write_fraction"]

#: Bytes per cache line (memory-bus traffic proxy).
_LINE_BYTES = 64.0


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of the interference-aware admission controller."""

    #: Workload ``app_id``\\ s never co-located with their own kind
    #: (matches the scenario scheduler's anti-affinity rule).
    anti_affinity: Tuple[str, ...] = ()
    #: Reject an arrival when even the best candidate's predicted
    #: degradation exceeds this bound (drain evacuations ignore it —
    #: a maintenance move is forced).
    max_predicted_degradation: float = 0.5
    #: vCPUs every host must keep free *after* admitting an arrival
    #: (reserved migration headroom); ignored for forced moves.
    headroom_vcpus: int = 0

    def __post_init__(self) -> None:
        if self.max_predicted_degradation < 0:
            raise ValueError("max_predicted_degradation must be non-negative")
        if self.headroom_vcpus < 0:
            raise ValueError("headroom_vcpus must be non-negative")


def _pressure_row_for(vm: VirtualMachine, epoch_seconds: float) -> np.ndarray:
    """A VM's admission pressure row (:data:`ADMISSION_RESOURCES` order).

    Derived from the workload's packed demand at **nominal** load — a
    pure function of the workload configuration, computed once per VM
    and scaled linearly by the current offered-load fraction at scoring
    time.
    """
    demand = vm.demand(vm.workload.nominal_load, epoch_seconds=epoch_seconds)
    row = np.asarray(pack_demand(demand), dtype=float)
    instructions = row[_I_INST]
    bus_mb = (
        instructions
        * row[_I_L1MISS]
        / 1000.0
        * _LINE_BYTES
        / 1e6
        * (1.0 + row[_I_WRITE])
    )
    return np.array(
        [instructions, row[_I_WS], bus_mb, row[_I_DISK], row[_I_NET]],
        dtype=float,
    )


def _capacity_row_for(host: "Host") -> np.ndarray:
    """One host's resource capacities (:data:`ADMISSION_RESOURCES` order)."""
    spec = host.machine.spec
    arch = spec.architecture
    eps = host.epoch_seconds
    return np.array(
        [
            arch.cores * arch.frequency_hz * eps / max(arch.base_cpi, 1e-9),
            arch.shared_cache_mb * arch.cache_domains,
            arch.memory_bandwidth_mbps * eps,
            spec.disk.count * spec.disk.sequential_mbps * eps,
            spec.nic.bandwidth_mbps * eps,
        ],
        dtype=float,
    )


class _ShardAdmissionState:
    """One shard's admission view for one epoch batch.

    Rebuilt from the live cluster whenever a batch needs placement
    decisions, then updated incrementally as this batch's admissions
    and evacuations land — so same-epoch decisions see each other.
    """

    def __init__(
        self,
        shard: "FleetShard",
        policy: AdmissionPolicy,
        drained: Set[str],
        pressure_rows: Dict[str, np.ndarray],
        capacity: np.ndarray,
    ) -> None:
        cluster = shard.cluster
        self.policy = policy
        self.host_names: List[str] = list(cluster.hosts)
        self.host_index = {name: i for i, name in enumerate(self.host_names)}
        n = len(self.host_names)
        self.capacity = capacity
        self.pressure = np.zeros((n, len(ADMISSION_RESOURCES)), dtype=float)
        self.free_vcpus = np.empty(n, dtype=float)
        self.free_mem = np.empty(n, dtype=float)
        self.apps: List[Set[str]] = []
        # One gathering pass, then a single vectorized scatter-add: at
        # fleet scale this rebuild runs on most churn epochs, so per-VM
        # numpy calls are too expensive here.
        rows: List[np.ndarray] = []
        loads: List[float] = []
        row_hosts: List[int] = []
        for i, host_name in enumerate(self.host_names):
            host = cluster.hosts[host_name]
            apps: Set[str] = set()
            used_vcpus = 0
            used_mem = 0.0
            host_loads = host._loads
            for vm_name, vm in host._vms.items():
                row = pressure_rows.get(vm_name)
                if row is None:
                    row = _pressure_row_for(vm, host.epoch_seconds)
                    pressure_rows[vm_name] = row
                rows.append(row)
                loads.append(host_loads.get(vm_name, 0.0))
                row_hosts.append(i)
                apps.add(vm.app_id)
                used_vcpus += vm.vcpus
                used_mem += vm.memory_gb
            self.apps.append(apps)
            self.free_vcpus[i] = host.machine.spec.architecture.cores - used_vcpus
            self.free_mem[i] = host.machine.spec.dram_gb - used_mem
        if rows:
            scaled = np.asarray(rows, dtype=float)
            scaled *= np.asarray(loads, dtype=float)[:, None]
            np.add.at(self.pressure, np.asarray(row_hosts, dtype=np.intp), scaled)
        self.drained_mask = np.fromiter(
            (name in drained for name in self.host_names), dtype=bool, count=n
        )
        #: Lazily built per-app presence masks for anti-affinity checks.
        self._app_masks: Dict[str, np.ndarray] = {}

    def mark_drained(self, host_name: str) -> None:
        self.drained_mask[self.host_index[host_name]] = True

    def mark_returned(self, host_name: str) -> None:
        self.drained_mask[self.host_index[host_name]] = False

    def _app_mask(self, app_id: str) -> np.ndarray:
        mask = self._app_masks.get(app_id)
        if mask is None:
            mask = self._app_masks[app_id] = np.fromiter(
                (app_id in apps for apps in self.apps),
                dtype=bool,
                count=len(self.apps),
            )
        return mask

    def _eligible_mask(self, vm: VirtualMachine, forced: bool) -> np.ndarray:
        """Hosts that may take ``vm``.

        Forced (maintenance) moves waive the *soft* constraints —
        headroom reserve and anti-affinity — because leaving a tenant on
        an out-of-service host is worse than a temporary policy
        violation; only physical capacity and drain state remain hard.
        """
        mask = (
            (self.free_vcpus >= vm.vcpus)
            & (self.free_mem >= vm.memory_gb)
            & ~self.drained_mask
        )
        if not forced:
            if self.policy.headroom_vcpus:
                mask = mask & (
                    self.free_vcpus >= vm.vcpus + self.policy.headroom_vcpus
                )
            if vm.app_id in self.policy.anti_affinity:
                mask = mask & ~self._app_mask(vm.app_id)
        return mask

    # ------------------------------------------------------------------
    def evaluations(
        self, probe: np.ndarray, vm: VirtualMachine, forced: bool
    ) -> List[Tuple[float, int, str]]:
        """Eligible candidates as ``(score, host index, host name)``."""
        scores = contention_scores(self.pressure + probe, self.capacity)
        mask = self._eligible_mask(vm, forced)
        return [
            (float(scores[i]), int(i), self.host_names[i])
            for i in np.flatnonzero(mask)
        ]

    def pick(
        self,
        probe: np.ndarray,
        vm: VirtualMachine,
        forced: bool,
        exclude: Optional[str] = None,
    ) -> Optional[str]:
        """The best candidate host, or ``None``.

        Ranking is ``(score, -free vCPUs, host order)``; non-forced
        picks additionally respect ``max_predicted_degradation``.
        """
        mask = self._eligible_mask(vm, forced)
        if exclude is not None:
            mask = mask.copy()
            mask[self.host_index[exclude]] = False
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return None
        scores = contention_scores(
            self.pressure[idx] + probe, self.capacity[idx]
        )
        # Stable lexsort: primary score, then free vCPUs (descending),
        # then host order — identical to the scalar tuple ranking.
        order = np.lexsort((idx, -self.free_vcpus[idx], scores))
        best = int(order[0])
        if not forced and scores[best] > self.policy.max_predicted_degradation:
            return None
        return self.host_names[int(idx[best])]

    def commit(self, host_name: str, probe: np.ndarray, vm: VirtualMachine) -> None:
        """Account an admission/evacuation landing on ``host_name``."""
        i = self.host_index[host_name]
        self.pressure[i] = self.pressure[i] + probe
        self.free_vcpus[i] -= vm.vcpus
        self.free_mem[i] -= vm.memory_gb
        self.apps[i].add(vm.app_id)
        mask = self._app_masks.get(vm.app_id)
        if mask is not None:
            mask[i] = True

    def release(self, host_name: str, probe: np.ndarray, vm: VirtualMachine) -> None:
        """Account a VM leaving ``host_name``.

        Pressure is inverted (probe subtracted with a zero clamp), not
        recomputed from the cluster; the clamp can leave a small
        residue, which is acceptable for heuristic scores because the
        state only lives for one epoch batch."""
        i = self.host_index[host_name]
        self.pressure[i] = np.maximum(0.0, self.pressure[i] - probe)
        self.free_vcpus[i] += vm.vcpus
        self.free_mem[i] += vm.memory_gb


@dataclass
class LifecycleStats:
    """Per-shard lifecycle counters (the operator's churn dashboard)."""

    arrivals_admitted: int = 0
    arrivals_rejected: int = 0
    departures: int = 0
    #: Departures of tenants that were never admitted (their arrival
    #: was rejected); dropped without touching the fleet.
    departures_ignored: int = 0
    drains: int = 0
    returns: int = 0
    drain_migrations: int = 0
    drain_stranded: int = 0
    load_changes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "arrivals_admitted": self.arrivals_admitted,
            "arrivals_rejected": self.arrivals_rejected,
            "departures": self.departures,
            "departures_ignored": self.departures_ignored,
            "drains": self.drains,
            "returns": self.returns,
            "drain_migrations": self.drain_migrations,
            "drain_stranded": self.drain_stranded,
            "load_changes": self.load_changes,
        }


class LifecycleEngine:
    """Applies a compiled timeline to the shards it owns, epoch by epoch.

    One engine serves one fleet (or one process worker's shard subset,
    via :meth:`subset`).  All mutable state — phase and flash factors,
    captured baseline loads, statistics — lives on the engine and is
    pickled with it (drain state lives on the clusters), so worker-side
    application behaves exactly like in-process application; statistics
    are collected back from the workers.  The one exception is the
    opt-in :attr:`decisions` log: it stays wherever it was recorded, so
    audit admission decisions with a serial or thread fleet (a process
    fleet warns when ``record_decisions`` is set before spawn).
    """

    def __init__(
        self,
        timeline: FleetTimeline,
        admission: Optional[AdmissionPolicy] = None,
        record_decisions: bool = False,
    ) -> None:
        self.timeline = timeline
        self.admission = admission or AdmissionPolicy()
        self.record_decisions = record_decisions
        self._batches: Dict[int, EpochBatch] = timeline.compile()
        #: Baseline (phase-1.0) load per VM, captured per shard on first
        #: touch and maintained through arrivals/departures.
        self._base_loads: Dict[str, Dict[str, float]] = {}
        self._phase: Dict[str, float] = {}
        self._flash: Dict[str, List[float]] = {}
        #: Cached per-VM admission pressure rows (nominal-load demand).
        self._rows: Dict[str, Dict[str, np.ndarray]] = {}
        #: Cached per-shard host capacity matrices (static topology).
        self._capacity: Dict[str, np.ndarray] = {}
        #: Cached per-shard resident-VM name sets (O(1) existence checks
        #: without forcing a placement-map rebuild per event).
        self._vm_names: Dict[str, Set[str]] = {}
        #: Tenants whose arrival was rejected, per shard — their
        #: auto-scheduled departures are dropped, not errors.
        self._rejected: Dict[str, Set[str]] = {}
        self.stats: Dict[str, LifecycleStats] = {}
        #: Full :class:`PlacementDecision` log (``record_decisions``).
        self.decisions: List[PlacementDecision] = []

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def subset(self, shard_ids: Sequence[str]) -> "LifecycleEngine":
        """An engine owning only ``shard_ids``'s events *and* their
        accumulated per-shard state.

        Process workers and regions take their engines through here.
        The subset carries the parent's mutable state for its shards —
        captured baseline loads, phase/flash factors, rejected tenants,
        counters — so an engine rebuilt mid-run (resuming from a
        checkpoint, re-partitioning into regions) continues exactly
        where the parent stood; subsetting a fresh engine copies empty
        state, preserving the original start-of-run behaviour.  The
        opt-in :attr:`decisions` log stays behind (see the class
        docstring)."""
        engine = LifecycleEngine(
            self.timeline.subset(shard_ids),
            admission=self.admission,
            record_decisions=self.record_decisions,
        )
        engine.load_state(self.state_dict(shard_ids))
        return engine

    def state_dict(
        self, shard_ids: Optional[Sequence[str]] = None
    ) -> Dict[str, Dict[str, object]]:
        """Picklable snapshot of the per-shard mutable state.

        Covers exactly what checkpoint/resume and :meth:`subset` need:
        captured baseline (phase-1.0) loads, phase and flash factors,
        rejected-tenant sets and the statistics counters — all keyed by
        shard id.  The pure caches (pressure rows, capacity matrices,
        VM-name sets) are deliberately absent: they rebuild
        deterministically from the live clusters.  ``shard_ids``
        restricts the snapshot to a shard subset.
        """
        wanted = None if shard_ids is None else set(shard_ids)

        def keep(shard_id: str) -> bool:
            return wanted is None or shard_id in wanted

        return {
            "base_loads": {
                sid: dict(loads)
                for sid, loads in self._base_loads.items()
                if keep(sid)
            },
            "phase": {
                sid: scale for sid, scale in self._phase.items() if keep(sid)
            },
            "flash": {
                sid: list(scales)
                for sid, scales in self._flash.items()
                if keep(sid)
            },
            "rejected": {
                sid: set(names)
                for sid, names in self._rejected.items()
                if keep(sid)
            },
            "stats": {
                sid: stats.as_dict()
                for sid, stats in self.stats.items()
                if keep(sid)
            },
        }

    def load_state(self, state: Mapping[str, Mapping[str, object]]) -> None:
        """Merge a :meth:`state_dict` snapshot into this engine.

        Per-shard overwrite semantics: shards present in ``state``
        replace this engine's entries, shards absent keep theirs — so
        disjoint worker/region snapshots can be loaded one after
        another to reassemble a fleet-wide engine.
        """
        for sid, loads in state.get("base_loads", {}).items():
            self._base_loads[sid] = dict(loads)
        for sid, scale in state.get("phase", {}).items():
            self._phase[sid] = float(scale)
        for sid, scales in state.get("flash", {}).items():
            self._flash[sid] = list(scales)
        for sid, names in state.get("rejected", {}).items():
            self._rejected[sid] = set(names)
        for sid, counters in state.get("stats", {}).items():
            self.stats[sid] = LifecycleStats(**counters)

    @staticmethod
    def merge_states(
        states: Sequence[Mapping[str, Mapping[str, object]]],
    ) -> Dict[str, Dict[str, object]]:
        """Union disjoint per-shard :meth:`state_dict` snapshots.

        Worker groups and regions each own a disjoint shard set, so
        their snapshots merge by plain per-shard key union — the
        reassembly step of a process/regional fleet checkpoint.
        """
        merged: Dict[str, Dict[str, object]] = {}
        for state in states:
            for key, per_shard in state.items():
                merged.setdefault(key, {}).update(per_shard)
        return merged

    def validate(self, shards: Mapping[str, "FleetShard"]) -> None:
        """Static validation against the fleet topology (at build time).

        Every event must name a known shard, and every host-addressed
        event (drains, returns, pinned arrivals) a known host of that
        shard.  VM names are checked at apply time — departures may
        legitimately reference VMs the timeline itself creates.
        """
        for event in self.timeline.events:
            shard = shards.get(event.shard)
            if shard is None:
                raise ValueError(
                    f"epoch {event.epoch}: lifecycle event references "
                    f"unknown shard {event.shard!r}: {event!r}"
                )
            host = getattr(event, "host", None)
            if host is not None and host not in shard.cluster.hosts:
                raise ValueError(
                    f"epoch {event.epoch}: lifecycle event references "
                    f"unknown host {host!r} on shard {event.shard!r}: {event!r}"
                )

    def _stats(self, shard_id: str) -> LifecycleStats:
        stats = self.stats.get(shard_id)
        if stats is None:
            stats = self.stats[shard_id] = LifecycleStats()
        return stats

    def _shard(
        self, shards: Mapping[str, "FleetShard"], epoch: int, event
    ) -> "FleetShard":
        shard = shards.get(event.shard)
        if shard is None:
            raise ValueError(
                f"epoch {epoch}: lifecycle event references unknown shard "
                f"{event.shard!r}: {event!r}"
            )
        return shard

    def _bases(self, shard: "FleetShard") -> Dict[str, float]:
        bases = self._base_loads.get(shard.shard_id)
        if bases is None:
            bases = self._base_loads[shard.shard_id] = dict(shard.baseline_loads)
        return bases

    def _load_factor(self, shard_id: str) -> float:
        return self._phase.get(shard_id, 1.0) * math.prod(
            self._flash.get(shard_id, [])
        )

    def _vm_name_set(self, shard: "FleetShard") -> Set[str]:
        names = self._vm_names.get(shard.shard_id)
        if names is None:
            names = self._vm_names[shard.shard_id] = set(
                shard.cluster.all_vms()
            )
        return names

    def _state_for(
        self,
        shard: "FleetShard",
        cache: Dict[str, _ShardAdmissionState],
    ) -> _ShardAdmissionState:
        state = cache.get(shard.shard_id)
        if state is None:
            capacity = self._capacity.get(shard.shard_id)
            if capacity is None:
                capacity = np.vstack(
                    [
                        _capacity_row_for(host)
                        for host in shard.cluster.hosts.values()
                    ]
                )
                self._capacity[shard.shard_id] = capacity
            state = _ShardAdmissionState(
                shard,
                self.admission,
                shard.cluster.drained_hosts,
                self._rows.setdefault(shard.shard_id, {}),
                capacity,
            )
            cache[shard.shard_id] = state
        return state

    # ------------------------------------------------------------------
    # Epoch application
    # ------------------------------------------------------------------
    def apply(self, shards: Mapping[str, "FleetShard"], epoch: int) -> None:
        """Apply epoch ``epoch``'s event batch to ``shards``.

        Runs wherever the shard state lives (fleet process or worker),
        immediately before the stress schedule and the simulation step.
        In-epoch order: departures, drains, returns, load changes,
        arrivals — see :class:`~repro.fleet.timeline.EpochBatch`.
        """
        batch = self._batches.get(epoch)
        if batch is None:
            return
        states: Dict[str, _ShardAdmissionState] = {}
        for event in batch.departures:
            self._apply_departure(shards, epoch, event)
        for event in batch.drains:
            self._apply_drain(shards, epoch, event, states)
        for event in batch.returns:
            self._apply_return(shards, epoch, event, states)
        reload: Dict[str, "FleetShard"] = {}
        for event in batch.phases:
            reload[event.shard] = self._shard(shards, epoch, event)
            self._phase[event.shard] = event.scale
        for event in batch.flash_starts:
            reload[event.shard] = self._shard(shards, epoch, event)
            self._flash.setdefault(event.shard, []).append(event.scale)
        for event in batch.flash_ends:
            reload[event.shard] = self._shard(shards, epoch, event)
            flash = self._flash.get(event.shard, [])
            if event.scale in flash:
                flash.remove(event.scale)
        for shard_id, shard in reload.items():
            self._reload_shard(shard)
            # Loads changed under the admission view's feet.
            states.pop(shard_id, None)
        for event in batch.arrivals:
            self._apply_arrival(shards, epoch, event, states)

    def _reload_shard(self, shard: "FleetShard") -> None:
        factor = self._load_factor(shard.shard_id)
        bases = self._bases(shard)
        loads = {
            name: min(1.0, load * factor) for name, load in bases.items()
        }
        shard.baseline_loads = loads
        # Push the new loads to the hosts immediately (idempotent with
        # the shard's own delta push at the next epoch): same-epoch
        # admission then scores residents and newcomers at the same
        # load level instead of mixing pre- and post-change factors.
        for host in shard.cluster.hosts.values():
            for name in host._vms:
                load = loads.get(name)
                if load is not None:
                    host.set_load(name, load)
        self._stats(shard.shard_id).load_changes += 1

    def _apply_departure(
        self, shards: Mapping[str, "FleetShard"], epoch: int, event: VMDeparture
    ) -> None:
        shard = self._shard(shards, epoch, event)
        names = self._vm_name_set(shard)
        if event.vm_name not in names:
            # A tenant whose arrival was rejected never joined; its
            # scheduled departure is simply moot (rejection is a
            # counted outcome, not a timeline error).
            if event.vm_name in self._rejected.get(shard.shard_id, ()):
                self._stats(shard.shard_id).departures_ignored += 1
                return
            raise ValueError(
                f"epoch {epoch}: lifecycle event references unknown VM "
                f"{event.vm_name!r} on shard {event.shard!r}: {event!r}"
            )
        shard.cluster.remove_vm(event.vm_name)
        names.discard(event.vm_name)
        self._bases(shard).pop(event.vm_name, None)
        shard.baseline_loads.pop(event.vm_name, None)
        self._rows.get(shard.shard_id, {}).pop(event.vm_name, None)
        self._stats(shard.shard_id).departures += 1

    def _apply_drain(
        self,
        shards: Mapping[str, "FleetShard"],
        epoch: int,
        event: HostDrain,
        states: Dict[str, _ShardAdmissionState],
    ) -> None:
        shard = self._shard(shards, epoch, event)
        host = shard.cluster.hosts.get(event.host)
        if host is None:
            raise ValueError(
                f"epoch {epoch}: lifecycle event references unknown host "
                f"{event.host!r} on shard {event.shard!r}: {event!r}"
            )
        stats = self._stats(shard.shard_id)
        stats.drains += 1
        # Cluster-level drain state: the placement manager's mitigation
        # migrations respect it too, not just lifecycle admission.
        shard.cluster.drained_hosts.add(event.host)
        cached = states.get(shard.shard_id)
        if cached is not None:
            cached.mark_drained(event.host)
        residents = list(host._vms)
        if not residents:
            return
        state = self._state_for(shard, states)
        rows = self._rows.setdefault(shard.shard_id, {})
        for vm_name in residents:
            vm = host.get_vm(vm_name)
            row = rows.get(vm_name)
            if row is None:
                row = rows[vm_name] = _pressure_row_for(vm, host.epoch_seconds)
            probe = row * host.get_load(vm_name)
            destination = state.pick(probe, vm, forced=True, exclude=event.host)
            if self.record_decisions:
                self._record_decision(
                    state, probe, vm, event.host, destination, forced=True
                )
            if destination is None:
                stats.drain_stranded += 1
                continue
            shard.cluster.migrate_vm(vm_name, destination)
            state.commit(destination, probe, vm)
            state.release(event.host, probe, vm)
            stats.drain_migrations += 1

    def _apply_return(
        self,
        shards: Mapping[str, "FleetShard"],
        epoch: int,
        event: HostReturn,
        states: Dict[str, _ShardAdmissionState],
    ) -> None:
        shard = self._shard(shards, epoch, event)
        if event.host not in shard.cluster.hosts:
            raise ValueError(
                f"epoch {epoch}: lifecycle event references unknown host "
                f"{event.host!r} on shard {event.shard!r}: {event!r}"
            )
        shard.cluster.drained_hosts.discard(event.host)
        cached = states.get(shard.shard_id)
        if cached is not None:
            cached.mark_returned(event.host)
        self._stats(shard.shard_id).returns += 1

    def _apply_arrival(
        self,
        shards: Mapping[str, "FleetShard"],
        epoch: int,
        event: VMArrival,
        states: Dict[str, _ShardAdmissionState],
    ) -> None:
        shard = self._shard(shards, epoch, event)
        cluster = shard.cluster
        names = self._vm_name_set(shard)
        if event.vm_name in names:
            raise ValueError(
                f"epoch {epoch}: lifecycle arrival duplicates an existing "
                f"VM name {event.vm_name!r} on shard {event.shard!r}: {event!r}"
            )
        stats = self._stats(shard.shard_id)
        vm = VirtualMachine(
            name=event.vm_name,
            workload=event.workload.copy(),
            vcpus=event.vcpus,
            memory_gb=event.memory_gb,
        )
        epoch_seconds = next(iter(cluster.hosts.values())).epoch_seconds
        row = _pressure_row_for(vm, epoch_seconds)
        factor = self._load_factor(shard.shard_id)
        effective = min(1.0, event.load * factor)
        probe = row * effective
        if event.host is not None:
            destination: Optional[str] = event.host
            if destination not in cluster.hosts:
                raise ValueError(
                    f"epoch {epoch}: lifecycle event references unknown host "
                    f"{destination!r} on shard {event.shard!r}: {event!r}"
                )
            if destination in cluster.drained_hosts:
                raise ValueError(
                    f"epoch {epoch}: lifecycle arrival pinned to drained "
                    f"host {destination!r}: {event!r}"
                )
            if not cluster.hosts[destination].can_fit(vm):
                raise ValueError(
                    f"epoch {epoch}: lifecycle arrival pinned to host "
                    f"{destination!r} which cannot fit it: {event!r}"
                )
            # No scoring needed: only keep an already-built admission
            # view consistent (a later rebuild sees the placement).
            state = states.get(shard.shard_id)
        else:
            state = self._state_for(shard, states)
            destination = state.pick(probe, vm, forced=False)
            if self.record_decisions:
                self._record_decision(
                    state, probe, vm, "(arrival)", destination, forced=False
                )
        if destination is None:
            stats.arrivals_rejected += 1
            self._rejected.setdefault(shard.shard_id, set()).add(event.vm_name)
            return
        cluster.place_vm(vm, destination, load=effective)
        if state is not None:
            state.commit(destination, probe, vm)
        names.add(event.vm_name)
        self._bases(shard)[event.vm_name] = event.load
        shard.baseline_loads[event.vm_name] = effective
        self._rows.setdefault(shard.shard_id, {})[event.vm_name] = row
        stats.arrivals_admitted += 1

    def _record_decision(
        self,
        state: _ShardAdmissionState,
        probe: np.ndarray,
        vm: VirtualMachine,
        source: str,
        destination: Optional[str],
        forced: bool,
    ) -> None:
        candidates = sorted(
            state.evaluations(probe, vm, forced=forced),
            key=lambda entry: (entry[0], -state.free_vcpus[entry[1]], entry[1]),
        )
        evaluations = [
            CandidateEvaluation(
                host_name=host_name,
                predicted_background_degradation=score,
                predicted_vm_degradation=score,
                score=score,
            )
            for score, _i, host_name in candidates
        ]
        self.decisions.append(
            PlacementDecision(
                vm_name=vm.name,
                source_host=source,
                destination=destination,
                evaluations=evaluations,
                no_acceptable_destination=destination is None,
            )
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats_dict(self) -> Dict[str, Dict[str, int]]:
        """Per-shard lifecycle counters as plain dicts (picklable)."""
        return {
            shard_id: stats.as_dict() for shard_id, stats in self.stats.items()
        }
