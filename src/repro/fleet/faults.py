"""Deterministic fault injection for the process shard executor.

Self-healing code is only trustworthy if its failure paths are
exercised on purpose: a :class:`FaultPlan` is a seeded, fully
deterministic schedule of worker failures — SIGKILL at a chosen point
of a chosen epoch, a hang that stops epoch progress, a corrupted or
delayed shared-memory descriptor — that the executor injects into its
own workers.  The chaos test suite
(``tests/fleet/test_fault_injection.py``), the recovery property tests
and the ``FLEET_SMOKE_CHAOS=1`` CI leg all drive the supervision layer
(:mod:`repro.fleet.supervisor`) through plans built here, so the
recovery contract ("bit-identical to an undisturbed run") is pinned
against real worker deaths, not mocks.

Plans are injected either programmatically (``Fleet(fault_plan=...)``)
or through the :data:`ENV_FAULT_PLAN` environment variable, whose JSON
value is parsed by :meth:`FaultPlan.from_json` — either an explicit
``{"faults": [...]}`` list or a seeded ``{"seed": ..., "epochs": ...,
"workers": ..., "kills": ...}`` generator spec.  Faults target workers
by group index; each worker's init payload carries only its own slice
(:meth:`FaultPlan.for_worker`), and a respawned worker's slice drops
the faults it already fired (:meth:`FaultPlan.after_epoch`) so a kill
does not re-fire during deterministic replay.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.shm import ShmEpochDescriptor

#: Supported fault kinds.
FAULT_KINDS = ("kill", "hang", "corrupt_descriptor", "delay_descriptor")

#: Where inside an epoch a ``kill``/``hang`` fault fires: before the
#: lifecycle/stress mutations, mid-epoch (shards advanced, results not
#: yet shipped), or after the columnar buffers are written.
FAULT_POINTS = ("before", "mid", "after")

#: Environment hook: a JSON fault-plan spec injected into every process
#: executor built without an explicit plan (the CI chaos leg's knob).
ENV_FAULT_PLAN = "REPRO_FLEET_FAULT_PLAN"


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled failure of one worker.

    ``seconds`` is the sleep length for ``hang`` and
    ``delay_descriptor`` faults (a hang defaults to effectively forever
    — the supervisor's heartbeat deadline is what ends it).
    """

    kind: str
    worker: int
    epoch: int
    point: str = "before"
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; choose from {FAULT_POINTS}"
            )
        if self.worker < 0:
            raise ValueError("worker index must be >= 0")
        if self.epoch < 0:
            raise ValueError("epoch must be >= 0")
        if self.seconds <= 0:
            raise ValueError("seconds must be > 0")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of :class:`WorkerFault`\\ s.

    Immutable and picklable: the executor slices it per worker into the
    init payloads, and the worker side fires it from inside
    ``_worker_run_epoch``.  An empty plan is falsy.
    """

    faults: Tuple[WorkerFault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        epochs: int,
        workers: int,
        kills: int = 1,
        hangs: int = 0,
        corruptions: int = 0,
        delays: int = 0,
        hang_seconds: float = 3600.0,
        delay_seconds: float = 0.2,
    ) -> "FaultPlan":
        """A seeded random plan: same seed, same faults, every time."""
        if epochs < 1 or workers < 1:
            raise ValueError("generate needs at least one epoch and one worker")
        rng = np.random.default_rng(seed)
        faults = []
        for kind, count in (
            ("kill", kills),
            ("hang", hangs),
            ("corrupt_descriptor", corruptions),
            ("delay_descriptor", delays),
        ):
            for _ in range(count):
                faults.append(
                    WorkerFault(
                        kind=kind,
                        worker=int(rng.integers(workers)),
                        epoch=int(rng.integers(epochs)),
                        point=FAULT_POINTS[int(rng.integers(len(FAULT_POINTS)))],
                        seconds=(
                            hang_seconds
                            if kind == "hang"
                            else delay_seconds
                            if kind == "delay_descriptor"
                            else 3600.0
                        ),
                    )
                )
        return cls(faults=tuple(faults))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan spec: a ``{"faults": [...]}`` list of
        :class:`WorkerFault` fields, or a seeded :meth:`generate` spec
        (any mapping with a ``"seed"`` key)."""
        data = json.loads(text)
        if not isinstance(data, Mapping):
            raise ValueError(
                f"fault plan spec must be a JSON object, got {type(data).__name__}"
            )
        if "seed" in data:
            return cls.generate(**{str(k): v for k, v in data.items()})
        entries = data.get("faults")
        if not isinstance(entries, list):
            raise ValueError("fault plan spec needs a 'faults' list or a 'seed'")
        return cls(
            faults=tuple(
                WorkerFault(**{str(k): v for k, v in entry.items()})
                for entry in entries
            )
        )

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultPlan"]:
        """The :data:`ENV_FAULT_PLAN` plan, or ``None`` when unset."""
        spec = (environ if environ is not None else os.environ).get(ENV_FAULT_PLAN)
        if not spec:
            return None
        return cls.from_json(spec)

    # ------------------------------------------------------------------
    # Slicing (parent side)
    # ------------------------------------------------------------------
    def for_worker(self, worker: int) -> "FaultPlan":
        """The plan slice shipped inside one worker's init payload."""
        return FaultPlan(faults=tuple(f for f in self.faults if f.worker == worker))

    def after_epoch(self, epoch: int) -> "FaultPlan":
        """Drop faults scheduled at or before ``epoch``.

        Applied when a worker is respawned after failing epoch
        ``epoch``: the faults up to there already fired (or were
        overtaken by the failure), and replay must not re-fire them.
        """
        return FaultPlan(faults=tuple(f for f in self.faults if f.epoch > epoch))

    # ------------------------------------------------------------------
    # Firing (worker side)
    # ------------------------------------------------------------------
    def fire(self, epoch: int, point: str) -> None:
        """Fire this worker's ``kill``/``hang`` faults due at ``(epoch,
        point)`` — called from inside the worker's epoch function."""
        for fault in self.faults:
            if fault.epoch != epoch or fault.point != point:
                continue
            if fault.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif fault.kind == "hang":
                time.sleep(fault.seconds)

    def mangle(
        self, epoch: int, descriptor: "ShmEpochDescriptor"
    ) -> "ShmEpochDescriptor":
        """Apply descriptor faults due at ``epoch`` to an outgoing
        columnar descriptor: delay its delivery, or corrupt the segment
        name so the parent's attach fails."""
        for fault in self.faults:
            if fault.epoch != epoch:
                continue
            if fault.kind == "delay_descriptor":
                time.sleep(fault.seconds)
            elif fault.kind == "corrupt_descriptor":
                descriptor = replace(
                    descriptor, segment=descriptor.segment + "-corrupt"
                )
        return descriptor
