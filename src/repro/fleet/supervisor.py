"""Worker supervision for the process shard executor.

PR 6's failure semantics were detect-and-refuse: a dead worker marked
the :class:`~repro.fleet.executor.ProcessShardExecutor` broken and every
later epoch raised.  This module closes the loop into self-healing,
treating fault handling and state restoration as first-class subsystem
concerns (the Slick stance) rather than error paths:

* a :class:`FaultPolicy` on the fleet turns worker death — or a worker
  that stops making epoch progress past the ``heartbeat_timeout``
  deadline — into a supervised recovery: the worker's pool is respawned,
  its shards rehydrated from the last per-worker snapshot (taken every
  ``resnapshot_every`` epochs, or the run-start template), the missed
  epochs replayed deterministically through the lifecycle and stress
  schedule, and the failed epoch re-run — so the recovered run is
  **bit-identical** to an undisturbed one (pinned by
  ``tests/property/test_fault_recovery_equivalence.py``);
* when the per-worker ``restarts`` budget is exhausted,
  ``on_exhaustion`` picks the terminal behaviour: ``"raise"`` breaks the
  run loudly (naming the dead shards and the resume path), while
  ``"quarantine"`` degrades gracefully — the dead worker's shards are
  excluded from every later epoch and reports carry an explicit
  ``missing_shards`` manifest instead of silently shrinking.

Replay determinism rests on two facts the equivalence suites already
pin: the per-epoch ``analyze`` flag is the only epoch parameter that
changes worker-resident state (report flattening is a pure read), and
lifecycle/stress mutations are deterministic functions of the epoch
number and that state.  The supervisor therefore records the analyze
history and replays it verbatim.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.fleet.telemetry import C_QUARANTINED, C_RECOVERIES, C_RESTARTS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.executor import ProcessShardExecutor, ShardEpochResult

#: Terminal behaviours once a worker's restart budget is exhausted.
EXHAUSTION_MODES = ("raise", "quarantine")


@dataclass(frozen=True)
class FaultPolicy:
    """How a fleet treats worker death and hangs.

    Parameters
    ----------
    restarts:
        Per-worker restart budget for the whole run (0 goes straight to
        the ``on_exhaustion`` behaviour on the first failure).
    backoff:
        Seconds to wait before each respawn attempt.
    on_exhaustion:
        ``"raise"`` (break the run, naming the dead shards) or
        ``"quarantine"`` (exclude the worker's shards and degrade
        gracefully with an explicit missing-shard manifest).
    heartbeat_timeout:
        Epoch-progress deadline in seconds: a worker whose epoch result
        does not arrive within it is treated as hung, SIGKILLed and
        recovered like a death.  ``None`` disables hang detection
        (deaths are still detected via the broken pool).
    resnapshot_every:
        Cadence (in completed epochs) of per-worker state snapshots
        kept for recovery.  ``None`` recovers from the run-start
        template (replaying the whole history); small values bound the
        replay length at the cost of a per-cadence snapshot pickle.
    """

    restarts: int = 2
    backoff: float = 0.0
    on_exhaustion: str = "raise"
    heartbeat_timeout: Optional[float] = None
    resnapshot_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.restarts < 0:
            raise ValueError("restarts must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.on_exhaustion not in EXHAUSTION_MODES:
            raise ValueError(
                f"unknown on_exhaustion {self.on_exhaustion!r}; choose from {EXHAUSTION_MODES}"
            )
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be > 0 (or None)")
        if self.resnapshot_every is not None and self.resnapshot_every < 1:
            raise ValueError("resnapshot_every must be >= 1 (or None)")


@dataclass
class WorkerHealth:
    """One worker group's live health record.

    Maintained by the executor for every process fleet (policy or not),
    so dashboards can always show the worker panel; the supervisor adds
    restart/quarantine transitions.
    """

    worker: int
    shard_ids: Tuple[str, ...]
    pid: Optional[int] = None
    restarts: int = 0
    #: ``time.monotonic()`` of the last epoch result (or spawn).
    last_heartbeat: Optional[float] = None
    last_epoch: Optional[int] = None
    quarantined: bool = False
    alive: bool = True

    def beat(self, epoch: Optional[int] = None) -> None:
        self.last_heartbeat = time.monotonic()
        if epoch is not None:
            self.last_epoch = epoch

    def heartbeat_age(self) -> Optional[float]:
        if self.last_heartbeat is None:
            return None
        return time.monotonic() - self.last_heartbeat

    def as_dict(self) -> Dict[str, object]:
        """JSON-able row for the dashboard's worker-health panel."""
        return {
            "worker": self.worker,
            "shards": list(self.shard_ids),
            "pid": self.pid,
            "restarts": self.restarts,
            "last_heartbeat_age_seconds": self.heartbeat_age(),
            "last_epoch": self.last_epoch,
            "quarantined": self.quarantined,
            "alive": self.alive,
        }


@dataclass
class GroupSnapshot:
    """One worker group's recovery point.

    ``blob`` is the worker's pickled ``(shards, lifecycle_state)``
    snapshot; ``None`` means the parent's start-of-run template (which
    the parent already holds, so nothing is retained).  ``epoch`` is
    the first epoch *not* captured — replay starts there.
    """

    epoch: int
    blob: Optional[bytes] = None


class WorkerSupervisor:
    """Recovery bookkeeping and orchestration for one process executor.

    The executor owns the mechanics (pools, readers, payloads); the
    supervisor owns the policy decisions — what to recover from, how
    many epochs to replay, when to give up — and drives the executor's
    respawn/replay/quarantine hooks.
    """

    def __init__(self, policy: FaultPolicy, executor: "ProcessShardExecutor") -> None:
        self.policy = policy
        self._executor = executor
        self._snapshots: Dict[int, GroupSnapshot] = {}
        #: Per-epoch analyze flags since the workers spawned (replay input).
        self._analyze: Dict[int, bool] = {}
        self._base_epoch: Optional[int] = None
        #: (kind, worker, epoch) transitions, oldest first.
        self.events: List[Tuple[str, int, int]] = []

    # ------------------------------------------------------------------
    def note_epoch(self, epoch: int, analyze: bool) -> None:
        """Record one epoch's replay inputs before it runs."""
        if self._base_epoch is None:
            # The workers' template state corresponds to the first epoch
            # ever submitted (a resumed fleet starts past zero).
            self._base_epoch = epoch
            for group in range(self._executor.workers):
                self._snapshots[group] = GroupSnapshot(epoch=epoch)
        self._analyze[epoch] = analyze

    def after_epoch(self, epoch: int) -> None:
        """Refresh the recovery snapshots on the configured cadence.

        A snapshot that cannot be fetched (the worker died right after
        returning its epoch) is skipped: the stale snapshot stays valid,
        recovery just replays a little further back.
        """
        every = self.policy.resnapshot_every
        if not every or self._base_epoch is None:
            return
        if (epoch - self._base_epoch + 1) % every != 0:
            return
        for group, blob in self._executor._fetch_group_snapshots():
            if blob is not None:
                self._snapshots[group] = GroupSnapshot(epoch=epoch + 1, blob=blob)

    def replay_timeout(self, steps: int) -> Optional[float]:
        """Deadline for a replay batch: the heartbeat budget per epoch."""
        if self.policy.heartbeat_timeout is None:
            return None
        return self.policy.heartbeat_timeout * max(1, steps)

    # ------------------------------------------------------------------
    def recover(
        self,
        group: int,
        epoch: int,
        analyze: bool,
        report: str,
        cause: BaseException,
    ) -> Optional[List[Tuple[str, "ShardEpochResult"]]]:
        """Recover one failed worker group and re-run the failed epoch.

        Returns the epoch's shard results on success, ``None`` when the
        group was quarantined, and raises :class:`RuntimeError` when the
        restart budget is exhausted under ``on_exhaustion="raise"``.
        """
        executor = self._executor
        health = executor._health[group]
        health.alive = False
        telemetry = getattr(executor, "_telemetry", None)
        if telemetry is not None:
            telemetry.inc(C_RECOVERIES)
        span = (
            telemetry.span("recovery", epoch)
            if telemetry is not None
            else nullcontext()
        )
        with span:
            while health.restarts < self.policy.restarts:
                health.restarts += 1
                if self.policy.backoff:
                    time.sleep(self.policy.backoff)
                snapshot = self._snapshots[group]
                try:
                    executor._respawn_group(group, snapshot, fired_through=epoch)
                    steps = [
                        (e, self._analyze[e])
                        for e in range(snapshot.epoch, epoch)
                    ]
                    executor._replay_group(
                        group, steps, timeout=self.replay_timeout(len(steps))
                    )
                    pairs = executor._run_group_epoch(
                        group,
                        epoch,
                        analyze,
                        report,
                        timeout=self.policy.heartbeat_timeout,
                    )
                except Exception as exc:  # noqa: BLE001 - retried, then surfaced
                    cause = exc
                    continue
                health.alive = True
                health.beat(epoch)
                self.events.append(("WORKER_RESTARTED", group, epoch))
                if telemetry is not None:
                    telemetry.inc(C_RESTARTS)
                    telemetry.log_event(
                        "worker_restarted",
                        worker=group,
                        epoch=epoch,
                        restarts=health.restarts,
                    )
                return pairs
            shard_ids = ", ".join(executor._groups[group])
            if self.policy.on_exhaustion == "quarantine":
                executor._quarantine_group(group)
                self.events.append(("SHARDS_QUARANTINED", group, epoch))
                if telemetry is not None:
                    telemetry.inc(
                        C_QUARANTINED, len(executor._groups[group])
                    )
                    telemetry.log_event(
                        "shards_quarantined",
                        worker=group,
                        epoch=epoch,
                        shards=list(executor._groups[group]),
                    )
                return None
            executor._mark_group_dead(group)
            raise RuntimeError(
                f"fleet worker {group} (shards: {shard_ids}) failed at epoch "
                f"{epoch} and its restart budget ({self.policy.restarts}) is "
                "exhausted; the run cannot continue — resume from the last "
                "checkpoint (repro.fleet.resume_fleet) or set "
                "FaultPolicy(on_exhaustion='quarantine') to degrade gracefully"
            ) from cause
