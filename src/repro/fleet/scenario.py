"""Synthetic datacenter scenario generation.

A :class:`DatacenterScenario` describes a fleet declaratively — shard
and host counts, the workload mix drawn from the CloudSuite-like models
in :mod:`repro.workloads`, per-VM steady-state loads, and scheduled
interference episodes (a stress VM colocated with production tenants
that switches on for a window of epochs).  :func:`build_fleet` turns the
description into a ready-to-run :class:`~repro.fleet.fleet.Fleet`; the
whole construction is deterministic in the scenario seed, so two fleets
built from the same scenario behave identically epoch for epoch — the
property the engine-equivalence tests and benchmarks rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import DeepDiveConfig
from repro.fleet.faults import FaultPlan
from repro.fleet.fleet import Fleet, FleetShard, ScheduledStress
from repro.fleet.lifecycle import AdmissionPolicy, LifecycleEngine
from repro.fleet.region import Region, RegionalFleet
from repro.fleet.supervisor import FaultPolicy
from repro.fleet.telemetry import TelemetryConfig, TelemetryRegistry
from repro.fleet.timeline import ARRIVAL_WORKLOADS, FleetTimeline
from repro.hardware.specs import MachineSpec, XEON_X5472
from repro.virt.cluster import Cluster
from repro.virt.sandbox import SandboxEnvironment
from repro.virt.vm import VirtualMachine
from repro.workloads.base import Workload
from repro.workloads.stress import (
    DiskStressWorkload,
    MemoryStressWorkload,
    NetworkStressWorkload,
)

#: Production workload factories the scenario mix draws from (shared
#: with lifecycle-timeline arrivals, so churned-in tenants run the same
#: application population the fleet bootstrapped).
WORKLOAD_FACTORIES: Dict[str, Callable[[Optional[int]], Workload]] = dict(
    ARRIVAL_WORKLOADS
)

#: Stress workload factories for interference episodes.
STRESS_FACTORIES: Dict[str, Callable[[Optional[int]], Workload]] = {
    "memory": lambda seed: MemoryStressWorkload(
        working_set_mb=96.0, locality=0.05, seed=seed
    ),
    "network": lambda seed: NetworkStressWorkload(target_mbps=700.0, seed=seed),
    "disk": lambda seed: DiskStressWorkload(seed=seed),
}


@dataclass(frozen=True)
class InterferenceEpisode:
    """One scheduled interference episode.

    A stress VM of ``kind`` is created (idle) on host ``host_index`` of
    shard ``shard`` at build time and switched to ``intensity`` load for
    epochs ``[start_epoch, end_epoch)``.
    """

    shard: int
    host_index: int
    start_epoch: int
    end_epoch: int
    kind: str = "memory"
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in STRESS_FACTORIES:
            raise ValueError(
                f"unknown stress kind {self.kind!r}; "
                f"choose from {sorted(STRESS_FACTORIES)}"
            )
        if self.start_epoch < 0 or self.end_epoch <= self.start_epoch:
            raise ValueError("episode needs 0 <= start_epoch < end_epoch")
        if not 0.0 < self.intensity <= 1.0:
            raise ValueError("intensity must be in (0, 1]")


@dataclass
class DatacenterScenario:
    """Declarative description of a synthetic datacenter."""

    num_shards: int = 4
    hosts_per_shard: int = 8
    #: Empty headroom hosts per shard: migration destinations the
    #: placement manager can vet without predicted collateral damage.
    #: Without headroom a confirmed aggressor is often unplaceable (every
    #: candidate fails the acceptable-degradation bound) and interference
    #: persists — the paper's "no acceptable destination" outcome.
    spare_hosts_per_shard: int = 1
    #: Production VMs placed per host (2 vCPUs each on 8-core hosts).
    #: The default of 2 keeps baseline colocation interference below the
    #: operator threshold — a quiet fleet stays quiet — and leaves room
    #: for a stress VM and inbound migrations; 3 models an overcommitted
    #: pod where colocation itself is a performance crisis.
    vms_per_host: int = 2
    #: Cap on the total number of production VMs (fills hosts in order);
    #: ``None`` fills every host.
    max_vms: Optional[int] = None
    seed: int = 0
    #: Measurement noise of the simulated hosts.
    noise: float = 0.01
    spec: MachineSpec = XEON_X5472
    #: Relative weights of the production workload mix.
    workload_mix: Mapping[str, float] = field(
        default_factory=lambda: {
            "data_serving": 0.45,
            "web_search": 0.35,
            "data_analytics": 0.2,
        }
    )
    #: Steady-state load range (fractions of nominal) VMs draw from.
    load_range: Tuple[float, float] = (0.4, 0.7)
    #: Workloads never colocated with themselves (the scheduler's
    #: anti-affinity rule): two analytics VMs sharing one host saturate
    #: the disk and are a genuine performance crisis, not a quiet
    #: baseline.
    anti_affinity: Tuple[str, ...] = ("data_analytics",)
    episodes: Sequence[InterferenceEpisode] = ()
    #: Optional lifecycle timeline (VM churn, host maintenance, load
    #: phases) applied by a :class:`~repro.fleet.lifecycle.LifecycleEngine`
    #: before each epoch.  Shard ids follow the build's ``shard{i}``
    #: naming; host names are ``s{i}pm{j}``.
    timeline: Optional[FleetTimeline] = None
    #: Admission policy for timeline arrivals and drain evacuations; the
    #: default derives anti-affinity from the scenario's own rule.
    admission: Optional[AdmissionPolicy] = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")
        if self.hosts_per_shard < 1:
            raise ValueError("hosts_per_shard must be positive")
        if self.spare_hosts_per_shard < 0:
            raise ValueError("spare_hosts_per_shard must be non-negative")
        max_per_host = self.spec.architecture.cores // 2
        if not 1 <= self.vms_per_host <= max_per_host:
            raise ValueError(
                f"vms_per_host must be in [1, {max_per_host}] for "
                f"{self.spec.architecture.cores}-core hosts"
            )
        unknown = set(self.workload_mix) - set(WORKLOAD_FACTORIES)
        if unknown:
            raise ValueError(f"unknown workloads in mix: {sorted(unknown)}")
        if not self.workload_mix or sum(self.workload_mix.values()) <= 0:
            raise ValueError("workload_mix needs at least one positive weight")
        lo, hi = self.load_range
        if not 0.0 < lo <= hi:
            raise ValueError("load_range must satisfy 0 < low <= high")
        for episode in self.episodes:
            if not 0 <= episode.shard < self.num_shards:
                raise ValueError(f"episode shard {episode.shard} out of range")
            if not 0 <= episode.host_index < self.hosts_per_shard:
                raise ValueError(
                    f"episode host_index {episode.host_index} out of range"
                )

    def total_production_vms(self) -> int:
        full = self.num_shards * self.hosts_per_shard * self.vms_per_host
        return full if self.max_vms is None else min(full, self.max_vms)


def synthesize_datacenter(
    num_vms: int,
    num_shards: int = 4,
    vms_per_host: int = 2,
    seed: int = 0,
    episodes: Sequence[InterferenceEpisode] = (),
    **overrides,
) -> DatacenterScenario:
    """Scenario sized to hold ``num_vms`` production VMs.

    Convenience wrapper that derives ``hosts_per_shard`` from the target
    VM count and caps the build at exactly ``num_vms``.
    """
    if num_vms < 1:
        raise ValueError("num_vms must be positive")
    num_shards = min(num_shards, num_vms)
    hosts_per_shard = max(1, math.ceil(num_vms / (num_shards * vms_per_host)))
    return DatacenterScenario(
        num_shards=num_shards,
        hosts_per_shard=hosts_per_shard,
        vms_per_host=vms_per_host,
        max_vms=num_vms,
        seed=seed,
        episodes=episodes,
        **overrides,
    )


def build_fleet(
    scenario: DatacenterScenario,
    config: Optional[DeepDiveConfig] = None,
    engine: str = "batch",
    mitigate: bool = False,
    substrate: str = "batch",
    max_workers: Optional[int] = None,
    executor: Optional[str] = None,
    track_performance: bool = False,
    history_limit: Optional[int] = 64,
    history_mode: str = "lazy",
    fault_policy: Optional["FaultPolicy"] = None,
    fault_plan: Optional["FaultPlan"] = None,
    telemetry: Union["TelemetryConfig", "TelemetryRegistry", None] = None,
) -> Fleet:
    """Materialise a scenario into a runnable :class:`Fleet`.

    Construction is fully deterministic in ``scenario.seed``: clusters,
    sandboxes, workload parameters and load draws are all seeded from
    it, so fleets built twice from the same scenario (e.g. one per epoch
    engine or hardware substrate) evolve identically.

    Parameters
    ----------
    engine:
        Monitoring epoch engine (``"batch"``/``"scalar"``).
    substrate:
        Hardware contention substrate (``"batch"``/``"scalar"``); both
        produce equivalent counters, scalar is the reference/baseline.
    max_workers:
        Shard worker count for :meth:`Fleet.run_epoch` (``None`` =
        serial); any value yields identical results.
    executor:
        Shard execution strategy (``"serial"``/``"thread"``/``"process"``,
        see :class:`~repro.fleet.fleet.Fleet`); the default infers it
        from ``max_workers``.
    track_performance:
        Whether hosts materialise per-VM ground-truth performance
        reports.  The fleet's monitoring pipeline only reads counters,
        so this defaults to off; turn it on for evaluation harnesses
        that score DeepDive against client-visible performance.
    history_limit:
        Per-VM history retention in epochs (default 64, comfortably
        covering the smoothing and analyzer windows) so long fleet runs
        hold constant memory; ``None`` retains everything.
    history_mode:
        ``"lazy"`` (default) serves per-VM counter histories from the
        hosts' columnar ring stores, materialising samples only on
        access; ``"eager"`` materialises every epoch immediately (the
        reference mode, bit-identical results — pinned by
        ``tests/property/test_lazy_history_equivalence.py``).
    fault_policy / fault_plan:
        Worker supervision and injected fault schedule for the process
        executor (see :mod:`repro.fleet.supervisor` /
        :mod:`repro.fleet.faults`).
    telemetry:
        Fleet telemetry bus configuration (see
        :mod:`repro.fleet.telemetry`); ``None`` defers to the
        ``REPRO_FLEET_PROFILE`` environment switch (off by default).
        Telemetry never changes decisions — only timings and counters.

    A scenario with a ``timeline`` gets a
    :class:`~repro.fleet.lifecycle.LifecycleEngine` attached to the
    fleet: identical timelines produce bit-identical fleet evolutions
    for every substrate/history-mode/executor combination
    (``tests/property/test_lifecycle_equivalence.py``).
    """
    shards, schedule, lifecycle = _materialise(
        scenario,
        config=config,
        engine=engine,
        mitigate=mitigate,
        substrate=substrate,
        track_performance=track_performance,
        history_limit=history_limit,
        history_mode=history_mode,
    )
    return Fleet(
        shards,
        schedule=schedule,
        max_workers=max_workers,
        executor=executor,
        lifecycle=lifecycle,
        fault_policy=fault_policy,
        fault_plan=fault_plan,
        telemetry=telemetry,
    )


def _materialise(
    scenario: DatacenterScenario,
    config: Optional[DeepDiveConfig],
    engine: str,
    mitigate: bool,
    substrate: str,
    track_performance: bool,
    history_limit: Optional[int],
    history_mode: str,
) -> Tuple[List[FleetShard], List[ScheduledStress], Optional[LifecycleEngine]]:
    """Deterministically materialise a scenario's shards + schedule.

    Shared by :func:`build_fleet` and :func:`build_regional_fleet`:
    both draw from the same single seeded generator in the same order,
    so the flat and hierarchical constructions produce byte-identical
    shard states — the precondition for the region layer's
    bit-identity guarantee.
    """
    config = config or DeepDiveConfig()
    rng = np.random.default_rng(scenario.seed)
    mix_names = sorted(scenario.workload_mix)
    weights = np.array([scenario.workload_mix[n] for n in mix_names], dtype=float)
    weights = weights / weights.sum()
    budget = scenario.total_production_vms()

    shards: List[FleetShard] = []
    schedule: List[ScheduledStress] = []
    for s in range(scenario.num_shards):
        shard_id = f"shard{s}"
        cluster = Cluster(
            num_hosts=scenario.hosts_per_shard + scenario.spare_hosts_per_shard,
            spec=scenario.spec,
            seed=scenario.seed + 100_000 + 1_000 * s,
            noise=scenario.noise,
            host_prefix=f"s{s}pm",
            substrate=substrate,
            track_performance=track_performance,
            cache_demands=True,
            history_limit=history_limit,
            history_mode=history_mode,
        )
        baseline_loads: Dict[str, float] = {}
        for h in range(scenario.hosts_per_shard):
            host_kinds: List[str] = []
            for v in range(scenario.vms_per_host):
                if budget <= 0:
                    break
                budget -= 1
                wl_name = mix_names[int(rng.choice(len(mix_names), p=weights))]
                if wl_name in scenario.anti_affinity and wl_name in host_kinds:
                    # Anti-affinity redraw among the remaining workloads.
                    allowed = [
                        n for n in mix_names
                        if n not in scenario.anti_affinity or n not in host_kinds
                    ]
                    if allowed:
                        sub = np.array(
                            [scenario.workload_mix[n] for n in allowed], dtype=float
                        )
                        wl_name = allowed[
                            int(rng.choice(len(allowed), p=sub / sub.sum()))
                        ]
                host_kinds.append(wl_name)
                workload = WORKLOAD_FACTORIES[wl_name](
                    int(rng.integers(0, 2**31 - 1))
                )
                vm = VirtualMachine(
                    f"s{s}h{h:03d}v{v}-{wl_name}", workload, vcpus=2, memory_gb=2.0
                )
                load = float(rng.uniform(*scenario.load_range))
                cluster.place_vm(vm, f"s{s}pm{h}", load=load)
                baseline_loads[vm.name] = load

        for e, episode in enumerate(scenario.episodes):
            if episode.shard != s:
                continue
            workload = STRESS_FACTORIES[episode.kind](
                int(rng.integers(0, 2**31 - 1))
            )
            stress = VirtualMachine(
                f"s{s}stress{e}-{episode.kind}", workload, vcpus=2, memory_gb=1.0
            )
            cluster.place_vm(stress, f"s{s}pm{episode.host_index}", load=0.0)
            schedule.append(
                ScheduledStress(
                    shard_id=shard_id,
                    vm_name=stress.name,
                    start_epoch=episode.start_epoch,
                    end_epoch=episode.end_epoch,
                    intensity=episode.intensity,
                )
            )

        sandbox = SandboxEnvironment(
            num_hosts=1,
            spec=scenario.spec,
            epoch_seconds=config.epoch_seconds,
            profile_epochs=config.profile_epochs,
            seed=scenario.seed + 900_000 + s,
        )
        shards.append(
            FleetShard(
                shard_id=shard_id,
                cluster=cluster,
                config=config,
                engine=engine,
                mitigate=mitigate,
                sandbox=sandbox,
                baseline_loads=baseline_loads,
            )
        )
    lifecycle: Optional[LifecycleEngine] = None
    if scenario.timeline is not None:
        admission = scenario.admission or AdmissionPolicy(
            anti_affinity=tuple(scenario.anti_affinity)
        )
        lifecycle = LifecycleEngine(scenario.timeline, admission=admission)
    return shards, schedule, lifecycle


def partition_regions(
    shards: Sequence[FleetShard],
    num_regions: int,
    region_workers: Optional[int] = None,
) -> List[Region]:
    """Contiguously partition shards into balanced regions.

    Contiguity is the load-bearing property: concatenating the regions
    in order reproduces the flat shard order, so the regional fleet's
    region-insertion-order merge is bit-identical to the flat fleet's
    shard-insertion-order merge.  The first ``len(shards) %
    num_regions`` regions hold one extra shard.
    """
    if num_regions < 1:
        raise ValueError("num_regions must be positive")
    shards = list(shards)
    num_regions = min(num_regions, len(shards))
    base, extra = divmod(len(shards), num_regions)
    regions: List[Region] = []
    start = 0
    for r in range(num_regions):
        size = base + (1 if r < extra else 0)
        regions.append(
            Region(
                region_id=f"region{r}",
                shards=shards[start : start + size],
                max_workers=region_workers,
            )
        )
        start += size
    return regions


def build_regional_fleet(
    scenario: DatacenterScenario,
    num_regions: int,
    config: Optional[DeepDiveConfig] = None,
    engine: str = "batch",
    mitigate: bool = False,
    substrate: str = "batch",
    region_workers: Optional[int] = None,
    executor: Optional[str] = None,
    track_performance: bool = False,
    history_limit: Optional[int] = 64,
    history_mode: str = "lazy",
    fault_policy: Optional["FaultPolicy"] = None,
    fault_plans: Optional[Dict[str, "FaultPlan"]] = None,
    telemetry: Union["TelemetryConfig", "TelemetryRegistry", None] = None,
) -> RegionalFleet:
    """Materialise a scenario into a hierarchical :class:`RegionalFleet`.

    The shards are built by exactly the same seeded construction as
    :func:`build_fleet` and partitioned contiguously into
    ``num_regions`` balanced regions (``region0``, ``region1``, ...), so
    the hierarchical fleet evolves bit-identically to the flat one —
    whatever ``executor`` and ``region_workers`` (the *per-region*
    worker budget; there is no global pool) are chosen.  The scenario's
    stress schedule and lifecycle timeline are partitioned onto the
    owning regions by the :class:`RegionalFleet` constructor.
    """
    shards, schedule, lifecycle = _materialise(
        scenario,
        config=config,
        engine=engine,
        mitigate=mitigate,
        substrate=substrate,
        track_performance=track_performance,
        history_limit=history_limit,
        history_mode=history_mode,
    )
    regions = partition_regions(shards, num_regions, region_workers=region_workers)
    return RegionalFleet(
        regions,
        schedule=schedule,
        max_workers=region_workers,
        executor=executor,
        lifecycle=lifecycle,
        fault_policy=fault_policy,
        fault_plans=fault_plans,
        telemetry=telemetry,
    )
