"""Shared provenance stamping for benchmark and telemetry records.

``BENCH_fleet.json`` records and exported telemetry artifacts (Chrome
traces, JSONL event logs) are only orderable across commits and
machines when every record carries the same provenance envelope: UTC
timestamp, git revision, CPU count and Python version.  The helper used
to live inside ``benchmarks/test_fleet_scale.py``; it is hoisted here so
the bench suite and the telemetry exporters stamp records through one
implementation instead of drifting copies.
"""

from __future__ import annotations

import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional, Union

#: Repository root — ``src/repro/fleet/benchutil.py`` is three levels in.
REPO_ROOT = Path(__file__).resolve().parents[3]


def git_revision(repo_root: Optional[Union[str, Path]] = None) -> str:
    """The short git revision of ``repo_root`` (default: this repo).

    Returns ``"unknown"`` when git is unavailable, the directory is not
    a repository, or the lookup times out — provenance stamping must
    never break the caller.
    """
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=repo_root or REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def run_metadata(repo_root: Optional[Union[str, Path]] = None) -> Dict:
    """Provenance stamped into every benchmark/telemetry record.

    The perf-trajectory tooling orders and filters records by these
    fields; without them a BENCH file is a bag of unordered numbers.
    """
    return {
        "timestamp_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_rev": git_revision(repo_root),
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
    }
