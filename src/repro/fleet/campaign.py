"""Declarative campaign runner: parameter-grid sweeps over fleets.

A systems-scale evaluation is rarely one run — it is a *grid*: churn
rate × interference mix × admission policy × load phase, every cell a
full fleet simulation.  :class:`CampaignSpec` declares the grid, the
:class:`CampaignRunner` schedules its cells (in-process, or across a
pool of spawned processes), and each finished cell leaves two files
under the campaign directory:

``<cell_id>.npz``
    Schema-validated columnar per-epoch aggregates (decision counts per
    warning action, observation/analyzer/confirmation counts, raw
    counter totals, epoch wall-seconds) — see :data:`CELL_SCHEMA` and
    :func:`validate_cell_npz`.
``<cell_id>.summary.json``
    Human-readable roll-up: totals, epoch-time percentiles
    (p50/p90/p99) and SLO-violation fractions, lifecycle counters,
    throughput.

plus one ``manifest.json`` describing the grid.  Completion tracking is
*the files themselves*: a cell whose npz validates and whose summary
exists is done, so an interrupted campaign resumes by rerunning exactly
the missing or corrupt cells (``CampaignRunner.run(resume=True)``).

Cells are deterministic functions of (spec, cell parameters): the same
campaign produces byte-identical decision columns whatever the cell
scheduling — only the recorded wall-times differ.  Cell fleets are
hierarchical (:class:`~repro.fleet.region.RegionalFleet`), so one cell
scales to the 100k-VM tier by riding N regions × the shared-memory
process-executor path.
"""

from __future__ import annotations

import io
import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.config import DeepDiveConfig
from repro.fleet.checkpoint import Checkpoint, CheckpointError
from repro.fleet.executor import WARNING_ACTIONS
from repro.fleet.lifecycle import AdmissionPolicy
from repro.fleet.region import resume_fleet
from repro.fleet.runtime import RunOptions
from repro.fleet.scenario import (
    DatacenterScenario,
    InterferenceEpisode,
    build_regional_fleet,
    synthesize_datacenter,
)
from repro.fleet.telemetry import (
    C_CELLS,
    TelemetryConfig,
    TelemetryRegistry,
    resolve_telemetry,
)
from repro.fleet.timeline import FleetTimeline, LoadPhase, churn_timeline
from repro.hardware.batch import N_COUNTERS

#: Interference-mix axis values: which stress workloads the scenario
#: colocates with production tenants ("mixed" cycles all three kinds
#: across shards; "none" is the quiet-fleet control).
INTERFERENCE_MIXES: Tuple[str, ...] = ("none", "memory", "disk", "network", "mixed")

#: Version stamped into every cell npz; bumped on schema changes.
CELL_SCHEMA_VERSION = 1

#: The cell result schema: array name -> (dtype kind, ndim).  Shapes
#: are cross-checked against the ``epochs`` scalar, the warning-action
#: table and the Table-1 counter column count by
#: :func:`validate_cell_npz`.
CELL_SCHEMA: Dict[str, Tuple[str, int]] = {
    "schema_version": ("i", 0),
    "epochs": ("i", 0),
    "action_names": ("U", 1),
    "action_counts": ("i", 2),
    "observations": ("i", 1),
    "analyzer_invocations": ("i", 1),
    "confirmed": ("i", 1),
    "counter_totals": ("f", 2),
    "epoch_seconds": ("f", 1),
}


class CampaignSchemaError(ValueError):
    """A cell result file does not conform to :data:`CELL_SCHEMA`."""


def _slug(value: Union[float, str]) -> str:
    """Filesystem-safe token for a cell parameter value."""
    if isinstance(value, float):
        text = f"{value:g}"
    else:
        text = str(value)
    return text.replace(".", "p").replace("-", "m").replace("/", "_")


@dataclass(frozen=True)
class CampaignCell:
    """One grid cell: a concrete parameter assignment."""

    index: int
    churn_rate: float
    interference_mix: str
    admission_degradation: float
    load_phase: float

    @property
    def cell_id(self) -> str:
        return (
            f"cell{self.index:04d}"
            f"-churn{_slug(self.churn_rate)}"
            f"-mix{_slug(self.interference_mix)}"
            f"-adm{_slug(self.admission_degradation)}"
            f"-load{_slug(self.load_phase)}"
        )

    def params(self) -> Dict[str, Union[float, str]]:
        return {
            "churn_rate": self.churn_rate,
            "interference_mix": self.interference_mix,
            "admission_degradation": self.admission_degradation,
            "load_phase": self.load_phase,
        }


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative grid spec: base sizing plus four swept axes.

    The grid is the Cartesian product of the axes in declaration order
    (churn → mix → admission → load), so cell indices are stable across
    runs and machines — the foundation of file-based resume.
    """

    name: str
    # -- base sizing (shared by every cell) ---------------------------
    num_vms: int = 200
    num_shards: int = 4
    num_regions: int = 2
    epochs: int = 16
    seed: int = 0
    #: Region execution strategy + per-region worker budget (see
    #: :func:`~repro.fleet.scenario.build_regional_fleet`).
    executor: Optional[str] = None
    region_workers: Optional[int] = None
    history_limit: Optional[int] = 64
    #: Epoch wall-time budget; epochs slower than this count as SLO
    #: violations in the cell summaries.
    slo_epoch_seconds: float = 1.0
    # -- swept axes ----------------------------------------------------
    #: Tenant arrivals per epoch as a fraction of ``num_vms`` (0 = a
    #: static fleet).
    churn_rates: Tuple[float, ...] = (0.0,)
    #: One of :data:`INTERFERENCE_MIXES` per value.
    interference_mixes: Tuple[str, ...] = ("none",)
    #: ``AdmissionPolicy.max_predicted_degradation`` per value.
    admission_degradations: Tuple[float, ...] = (0.5,)
    #: Diurnal load-phase scale applied a third of the way into the run
    #: (1.0 = no phase change).
    load_phases: Tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if self.num_vms < 1 or self.num_shards < 1 or self.num_regions < 1:
            raise ValueError("num_vms, num_shards and num_regions must be positive")
        if self.epochs < 2:
            raise ValueError("a campaign cell needs at least 2 epochs")
        if self.slo_epoch_seconds <= 0:
            raise ValueError("slo_epoch_seconds must be positive")
        for axis_name in (
            "churn_rates",
            "interference_mixes",
            "admission_degradations",
            "load_phases",
        ):
            if not getattr(self, axis_name):
                raise ValueError(f"axis {axis_name} must not be empty")
        for rate in self.churn_rates:
            if rate < 0:
                raise ValueError("churn rates must be non-negative")
        for mix in self.interference_mixes:
            if mix not in INTERFERENCE_MIXES:
                raise ValueError(
                    f"unknown interference mix {mix!r}; "
                    f"choose from {INTERFERENCE_MIXES}"
                )
        for degradation in self.admission_degradations:
            if degradation < 0:
                raise ValueError("admission degradations must be non-negative")
        for scale in self.load_phases:
            if scale <= 0:
                raise ValueError("load phases must be positive")

    # ------------------------------------------------------------------
    def cells(self) -> List[CampaignCell]:
        """The grid, expanded in axis declaration order."""
        out: List[CampaignCell] = []
        index = 0
        for churn in self.churn_rates:
            for mix in self.interference_mixes:
                for degradation in self.admission_degradations:
                    for scale in self.load_phases:
                        out.append(
                            CampaignCell(
                                index=index,
                                churn_rate=churn,
                                interference_mix=mix,
                                admission_degradation=degradation,
                                load_phase=scale,
                            )
                        )
                        index += 1
        return out

    def scenario_for(self, cell: CampaignCell) -> DatacenterScenario:
        """The cell's concrete scenario (deterministic in spec + cell).

        Every cell shares the base topology seed, so cells differ only
        by the swept parameters: the interference mix adds one stress
        VM per shard (active for the middle half of the run), the churn
        rate scales a Poisson arrival process, the load phase scales
        every baseline load from a third of the way in, and the
        admission axis bounds the predicted-degradation admission
        controller.
        """
        shard_ids = [f"shard{s}" for s in range(self.num_shards)]
        episodes: List[InterferenceEpisode] = []
        if cell.interference_mix != "none":
            if cell.interference_mix == "mixed":
                kinds = ("memory", "disk", "network")
            else:
                kinds = (cell.interference_mix,)
            start = max(1, self.epochs // 4)
            end = max(start + 1, (3 * self.epochs) // 4)
            for s in range(self.num_shards):
                episodes.append(
                    InterferenceEpisode(
                        shard=s,
                        host_index=0,
                        start_epoch=start,
                        end_epoch=end,
                        kind=kinds[s % len(kinds)],
                        intensity=0.9,
                    )
                )
        timeline: Optional[FleetTimeline] = None
        if cell.churn_rate > 0:
            timeline = churn_timeline(
                shard_ids,
                epochs=self.epochs,
                seed=self.seed + 1,
                arrivals_per_epoch=max(cell.churn_rate * self.num_vms, 1e-6),
                mean_lifetime_epochs=max(self.epochs / 2.0, 2.0),
            )
        if cell.load_phase != 1.0:
            if timeline is None:
                timeline = FleetTimeline()
            phase_epoch = max(1, self.epochs // 3)
            for shard_id in shard_ids:
                timeline.add(
                    LoadPhase(
                        epoch=phase_epoch, shard=shard_id, scale=cell.load_phase
                    )
                )
        admission = AdmissionPolicy(
            anti_affinity=("data_analytics",),
            max_predicted_degradation=cell.admission_degradation,
        )
        return synthesize_datacenter(
            self.num_vms,
            num_shards=self.num_shards,
            seed=self.seed,
            episodes=tuple(episodes),
            timeline=timeline,
            admission=admission,
        )

    def manifest(self) -> Dict[str, object]:
        """The campaign manifest payload (written as ``manifest.json``)."""
        return {
            "name": self.name,
            "schema_version": CELL_SCHEMA_VERSION,
            "base": {
                "num_vms": self.num_vms,
                "num_shards": self.num_shards,
                "num_regions": self.num_regions,
                "epochs": self.epochs,
                "seed": self.seed,
                "executor": self.executor,
                "region_workers": self.region_workers,
                "history_limit": self.history_limit,
                "slo_epoch_seconds": self.slo_epoch_seconds,
            },
            "axes": {
                "churn_rate": list(self.churn_rates),
                "interference_mix": list(self.interference_mixes),
                "admission_degradation": list(self.admission_degradations),
                "load_phase": list(self.load_phases),
            },
            "cells": [
                {
                    "index": cell.index,
                    "cell_id": cell.cell_id,
                    "params": cell.params(),
                    "npz": f"{cell.cell_id}.npz",
                    "summary": f"{cell.cell_id}.summary.json",
                }
                for cell in self.cells()
            ],
        }


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
def _percentiles(values: np.ndarray) -> Dict[str, float]:
    return {
        "p50": float(np.percentile(values, 50)),
        "p90": float(np.percentile(values, 90)),
        "p99": float(np.percentile(values, 99)),
        "mean": float(values.mean()),
        "max": float(values.max()),
    }


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write-then-rename, so resume never sees a half-written file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def _load_cell_checkpoint(
    ckpt_path: Path,
    cell: CampaignCell,
    epochs: int,
    telemetry: Optional[TelemetryRegistry] = None,
):
    """The cell's mid-run checkpoint, if it exists and matches.

    Returns ``(resumed_fleet, extra)`` or ``None``.  Any problem —
    unreadable file, foreign cell, different epoch budget, truncated
    arrays — discards the checkpoint (it is deleted so the cell restarts
    cleanly) rather than poisoning the cell result.
    """
    if not ckpt_path.exists():
        return None
    try:
        checkpoint = Checkpoint.load(ckpt_path)
        extra = checkpoint.state().get("extra")
        if not isinstance(extra, dict):
            raise CheckpointError("cell checkpoint carries no progress arrays")
        if extra.get("cell_id") != cell.cell_id:
            raise CheckpointError(
                f"checkpoint belongs to cell {extra.get('cell_id')!r}"
            )
        if extra.get("epochs") != epochs:
            raise CheckpointError(
                f"checkpoint ran toward {extra.get('epochs')!r} epochs, "
                f"cell wants {epochs}"
            )
        k = checkpoint.epoch
        if not (0 < k < epochs):
            raise CheckpointError(f"checkpoint epoch {k} outside (0, {epochs})")
        for name in (
            "action_counts",
            "observations",
            "analyzer_invocations",
            "confirmed",
            "counter_totals",
            "epoch_seconds",
        ):
            array = extra.get(name)
            if not isinstance(array, np.ndarray) or array.shape[0] != k:
                raise CheckpointError(f"checkpoint array {name} is inconsistent")
        fleet = resume_fleet(checkpoint, telemetry=telemetry)
        return fleet, extra
    except (CheckpointError, KeyError, pickle.UnpicklingError):
        ckpt_path.unlink(missing_ok=True)
        return None


def run_cell(
    spec: CampaignSpec,
    cell: CampaignCell,
    campaign_dir: Union[str, Path],
    config: Optional[DeepDiveConfig] = None,
    checkpoint_every: Optional[int] = None,
    telemetry: Union[TelemetryConfig, TelemetryRegistry, None] = None,
    _fail_after_epochs: Optional[int] = None,
) -> Dict[str, object]:
    """Run one cell end to end and persist its npz + summary.

    The cell fleet is hierarchical (``spec.num_regions`` regions over
    ``spec.executor``); every epoch is collected columnar, so the
    per-epoch aggregates come straight off the decision arrays without
    materialising per-VM observation objects.  Returns the summary
    dict (also written to ``<cell_id>.summary.json``).

    ``checkpoint_every=k`` snapshots the fleet (plus the per-epoch
    arrays collected so far) to ``<cell_id>.ckpt`` every ``k`` epochs —
    a runtime knob, deliberately *not* part of the spec or manifest, so
    operators can turn it on when resuming an existing campaign
    directory.  A rerun of an interrupted cell resumes mid-cell from the
    checkpoint (bit-identical decision columns, only wall-times differ)
    instead of restarting from epoch 0; the checkpoint is deleted once
    the cell completes.  ``_fail_after_epochs`` is a test hook that
    aborts the run after that many epochs have executed *in this call*.

    ``telemetry`` instruments the cell fleet (a
    :class:`~repro.fleet.telemetry.TelemetryConfig` builds one fresh
    registry per cell; ``None`` defers to ``REPRO_FLEET_PROFILE``): the
    whole cell runs inside a ``cell`` span, the registry's ``cells``
    counter ticks, and a Perfetto-loadable ``<cell_id>.trace.json`` is
    written next to the cell's npz.  Decision columns stay bit-identical
    either way.
    """
    campaign_dir = Path(campaign_dir)
    campaign_dir.mkdir(parents=True, exist_ok=True)
    ckpt_path = campaign_dir / f"{cell.cell_id}.ckpt"
    registry = resolve_telemetry(telemetry)

    epochs = spec.epochs
    n_actions = len(WARNING_ACTIONS)
    action_counts = np.zeros((epochs, n_actions), dtype=np.int64)
    observations = np.zeros(epochs, dtype=np.int64)
    analyzer_invocations = np.zeros(epochs, dtype=np.int64)
    confirmed = np.zeros(epochs, dtype=np.int64)
    counter_totals = np.full((epochs, N_COUNTERS), np.nan, dtype=float)
    epoch_seconds = np.zeros(epochs, dtype=float)

    start_epoch = 0
    run_seconds_so_far = 0.0
    fleet = None
    build_seconds = 0.0
    bootstrap_seconds = 0.0
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError("checkpoint_every must be at least 1")
    resumed = _load_cell_checkpoint(ckpt_path, cell, epochs, telemetry=registry)
    if resumed is not None:
        fleet, extra = resumed
        start_epoch = fleet.current_epoch
        action_counts[:start_epoch] = extra["action_counts"]
        observations[:start_epoch] = extra["observations"]
        analyzer_invocations[:start_epoch] = extra["analyzer_invocations"]
        confirmed[:start_epoch] = extra["confirmed"]
        counter_totals[:start_epoch] = extra["counter_totals"]
        epoch_seconds[:start_epoch] = extra["epoch_seconds"]
        build_seconds = float(extra.get("build_seconds", 0.0))
        bootstrap_seconds = float(extra.get("bootstrap_seconds", 0.0))
        run_seconds_so_far = float(extra.get("run_seconds_so_far", 0.0))

    executed_here = 0
    options = RunOptions(analyze=True, report="columnar")
    t_cell = time.perf_counter()
    try:
        if fleet is None:
            scenario = spec.scenario_for(cell)
            t0 = time.perf_counter()
            fleet = build_regional_fleet(
                scenario,
                num_regions=spec.num_regions,
                config=config,
                executor=spec.executor,
                region_workers=spec.region_workers,
                history_limit=spec.history_limit,
                telemetry=registry,
            )
            build_seconds = time.perf_counter() - t0
            t0 = time.perf_counter()
            fleet.bootstrap()
            bootstrap_seconds = time.perf_counter() - t0

        t_run = time.perf_counter()
        for i in range(start_epoch, epochs):
            t0 = time.perf_counter()
            report = fleet.run_epoch(options)
            epoch_seconds[i] = time.perf_counter() - t0
            action_counts[i] = report.action_counts()
            observations[i] = report.observations()
            analyzer_invocations[i] = report.analyzer_invocations()
            confirmed[i] = report.confirmed_count()
            totals = report.counter_totals()
            if totals is not None:
                counter_totals[i] = totals
            executed_here += 1
            done = i + 1
            if (
                checkpoint_every is not None
                and done % checkpoint_every == 0
                and done < epochs
            ):
                fleet.snapshot(
                    ckpt_path,
                    extra={
                        "cell_id": cell.cell_id,
                        "epochs": epochs,
                        "action_counts": action_counts[:done].copy(),
                        "observations": observations[:done].copy(),
                        "analyzer_invocations": analyzer_invocations[:done].copy(),
                        "confirmed": confirmed[:done].copy(),
                        "counter_totals": counter_totals[:done].copy(),
                        "epoch_seconds": epoch_seconds[:done].copy(),
                        "build_seconds": build_seconds,
                        "bootstrap_seconds": bootstrap_seconds,
                        "run_seconds_so_far": run_seconds_so_far
                        + (time.perf_counter() - t_run),
                    },
                )
            if _fail_after_epochs is not None and executed_here >= _fail_after_epochs:
                raise RuntimeError(
                    f"cell {cell.cell_id} aborted after {executed_here} epochs "
                    "(test hook)"
                )
        run_seconds = run_seconds_so_far + (time.perf_counter() - t_run)

        stats = fleet.stats()
        lifecycle_stats = fleet.lifecycle_stats()
    finally:
        if fleet is not None:
            fleet.shutdown()
    if registry is not None:
        registry.record_span(
            "cell", t_cell, time.perf_counter() - t_cell, cell.index
        )
        registry.inc(C_CELLS)

    lifecycle_totals: Dict[str, int] = {}
    for shard_stats in lifecycle_stats.values():
        for key, value in shard_stats.items():
            lifecycle_totals[key] = lifecycle_totals.get(key, 0) + int(value)

    npz_payload: Dict[str, np.ndarray] = {
        "schema_version": np.int64(CELL_SCHEMA_VERSION),
        "epochs": np.int64(epochs),
        "action_names": np.array(WARNING_ACTIONS),
        "action_counts": action_counts,
        "observations": observations,
        "analyzer_invocations": analyzer_invocations,
        "confirmed": confirmed,
        "counter_totals": counter_totals,
        "epoch_seconds": epoch_seconds,
    }
    buffer = io.BytesIO()
    np.savez(buffer, **npz_payload)
    _atomic_write_bytes(campaign_dir / f"{cell.cell_id}.npz", buffer.getvalue())

    violations = int(np.count_nonzero(epoch_seconds > spec.slo_epoch_seconds))
    vm_epochs = int(observations.sum())
    summary: Dict[str, object] = {
        "cell_id": cell.cell_id,
        "index": cell.index,
        "params": cell.params(),
        "epochs": epochs,
        "num_vms": spec.num_vms,
        "num_regions": spec.num_regions,
        "executor": fleet.executor,
        "observations": vm_epochs,
        "analyzer_invocations": int(analyzer_invocations.sum()),
        "confirmed": int(confirmed.sum()),
        "detections": int(stats["detections"]),
        "migrations": int(stats["migrations"]),
        "final_vms": int(stats["vms"]),
        "lifecycle": lifecycle_totals,
        "build_seconds": round(build_seconds, 6),
        "bootstrap_seconds": round(bootstrap_seconds, 6),
        "run_seconds": round(run_seconds, 6),
        "vm_epochs_per_second": round(vm_epochs / max(run_seconds, 1e-9), 2),
        "epoch_seconds": {
            k: round(v, 6) for k, v in _percentiles(epoch_seconds).items()
        },
        "slo_epoch_seconds": spec.slo_epoch_seconds,
        "slo_violations": violations,
        "slo_violation_fraction": round(violations / epochs, 6),
        "status": "complete",
    }
    if start_epoch:
        summary["resumed_from_epoch"] = start_epoch
    if registry is not None:
        trace_path = campaign_dir / f"{cell.cell_id}.trace.json"
        registry.export_chrome_trace(trace_path)
        registry.log_event(
            "cell_complete", cell_id=cell.cell_id, epochs=epochs
        )
        registry.close()
        summary["trace"] = trace_path.name
    _atomic_write_bytes(
        campaign_dir / f"{cell.cell_id}.summary.json",
        json.dumps(summary, indent=2, sort_keys=True).encode(),
    )
    ckpt_path.unlink(missing_ok=True)
    return summary


def validate_cell_npz(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Load one cell npz and check it against :data:`CELL_SCHEMA`.

    Raises :class:`CampaignSchemaError` naming every violation: missing
    or unexpected arrays, wrong dtype kinds or ranks, shapes that
    disagree with the ``epochs`` scalar / warning-action table /
    counter column count, schema-version mismatches, non-finite or
    negative epoch times, and decision counts that do not add up to the
    observation counts.  Returns the validated arrays.
    """
    path = Path(path)
    try:
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except (OSError, ValueError) as exc:
        raise CampaignSchemaError(f"{path.name}: unreadable npz ({exc})") from exc

    problems: List[str] = []
    missing = sorted(set(CELL_SCHEMA) - set(arrays))
    unexpected = sorted(set(arrays) - set(CELL_SCHEMA))
    if missing:
        problems.append(f"missing arrays: {missing}")
    if unexpected:
        problems.append(f"unexpected arrays: {unexpected}")
    for name, (kind, ndim) in CELL_SCHEMA.items():
        array = arrays.get(name)
        if array is None:
            continue
        if array.dtype.kind != kind:
            problems.append(
                f"{name}: dtype kind {array.dtype.kind!r}, expected {kind!r}"
            )
        if array.ndim != ndim:
            problems.append(f"{name}: ndim {array.ndim}, expected {ndim}")

    if not problems:
        version = int(arrays["schema_version"])
        if version != CELL_SCHEMA_VERSION:
            problems.append(
                f"schema_version {version}, expected {CELL_SCHEMA_VERSION}"
            )
        epochs = int(arrays["epochs"])
        if epochs < 1:
            problems.append(f"epochs {epochs} must be positive")
        n_actions = arrays["action_names"].shape[0]
        if tuple(arrays["action_names"]) != WARNING_ACTIONS:
            problems.append("action_names do not match WARNING_ACTIONS")
        expected_shapes = {
            "action_counts": (epochs, n_actions),
            "observations": (epochs,),
            "analyzer_invocations": (epochs,),
            "confirmed": (epochs,),
            "counter_totals": (epochs, N_COUNTERS),
            "epoch_seconds": (epochs,),
        }
        for name, shape in expected_shapes.items():
            if arrays[name].shape != shape:
                problems.append(
                    f"{name}: shape {arrays[name].shape}, expected {shape}"
                )
    if not problems:
        seconds = arrays["epoch_seconds"]
        if not np.all(np.isfinite(seconds)) or np.any(seconds < 0):
            problems.append("epoch_seconds must be finite and non-negative")
        if np.any(arrays["action_counts"] < 0):
            problems.append("action_counts must be non-negative")
        row_sums = arrays["action_counts"].sum(axis=1)
        if not np.array_equal(row_sums, arrays["observations"]):
            problems.append("action_counts rows do not sum to observations")
    if problems:
        raise CampaignSchemaError(f"{path.name}: " + "; ".join(problems))
    return arrays


# ----------------------------------------------------------------------
# Campaign scheduling
# ----------------------------------------------------------------------
def _run_cell_task(
    spec: CampaignSpec,
    cell: CampaignCell,
    campaign_dir: str,
    config: Optional[DeepDiveConfig],
    checkpoint_every: Optional[int] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> Dict[str, object]:
    """Module-level cell entry point (picklable for spawned workers)."""
    return run_cell(
        spec,
        cell,
        campaign_dir,
        config=config,
        checkpoint_every=checkpoint_every,
        telemetry=telemetry,
    )


class CampaignRunner:
    """Schedules a campaign's cells and tracks completion on disk.

    Parameters
    ----------
    spec:
        The grid to run.
    campaign_dir:
        Where the manifest and per-cell result files live.  Rerunning a
        runner over an existing directory resumes it: cells whose npz
        validates and whose summary exists are skipped.
    config:
        DeepDive configuration shared by every cell fleet.
    cell_processes:
        1 (default) runs cells in-process, sequentially.  Larger values
        dispatch cells to a pool of *spawned* worker processes —
        appropriate when the cells themselves are small and serial;
        combining it with ``spec.executor="process"`` multiplies worker
        pools (each cell process spawns its own region pools) and is
        rarely what one machine wants.
    checkpoint_every:
        Snapshot each running cell every this many epochs (see
        :func:`run_cell`), so an interrupted campaign resumes *mid-cell*
        rather than rerunning interrupted cells from scratch.  A runtime
        knob, not recorded in the manifest — existing campaign
        directories accept it freely.
    telemetry:
        A :class:`~repro.fleet.telemetry.TelemetryConfig` applied to
        every cell (each cell builds its own fresh registry, so each
        leaves its own ``<cell_id>.trace.json``); ``None`` defers to
        ``REPRO_FLEET_PROFILE``.  Like ``checkpoint_every``, a runtime
        knob that never enters the manifest — cell results are
        bit-identical with or without it.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        campaign_dir: Union[str, Path],
        config: Optional[DeepDiveConfig] = None,
        cell_processes: int = 1,
        checkpoint_every: Optional[int] = None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        if cell_processes < 1:
            raise ValueError("cell_processes must be at least 1")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if telemetry is not None and not isinstance(telemetry, TelemetryConfig):
            raise TypeError(
                "CampaignRunner telemetry must be a TelemetryConfig (each "
                "cell builds its own registry), got "
                f"{type(telemetry).__name__}"
            )
        self.spec = spec
        self.campaign_dir = Path(campaign_dir)
        self.config = config
        self.cell_processes = cell_processes
        self.checkpoint_every = checkpoint_every
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    def cell_complete(self, cell: CampaignCell) -> bool:
        """Whether a cell's result files exist and validate."""
        npz = self.campaign_dir / f"{cell.cell_id}.npz"
        summary = self.campaign_dir / f"{cell.cell_id}.summary.json"
        if not npz.exists() or not summary.exists():
            return False
        try:
            validate_cell_npz(npz)
            json.loads(summary.read_text())
        except (CampaignSchemaError, json.JSONDecodeError):
            return False
        return True

    def _write_manifest(self) -> None:
        manifest = self.spec.manifest()
        manifest["created_unix"] = time.time()
        path = self.campaign_dir / "manifest.json"
        if path.exists():
            existing = json.loads(path.read_text())
            stale = {
                key: existing.get(key)
                for key in ("name", "base", "axes")
            }
            fresh = {key: manifest[key] for key in ("name", "base", "axes")}
            if json.loads(json.dumps(stale)) != json.loads(json.dumps(fresh)):
                raise ValueError(
                    f"campaign directory {self.campaign_dir} already holds a "
                    "different campaign; refusing to mix result files"
                )
            return
        _atomic_write_bytes(
            path, json.dumps(manifest, indent=2, sort_keys=True).encode()
        )

    def run(self, resume: bool = True) -> List[Dict[str, object]]:
        """Run (or resume) the whole grid; returns cell summaries in
        cell-index order.

        With ``resume=True`` (default) completed cells — result files
        present and schema-valid — are loaded from disk instead of
        rerun, so an interrupted campaign picks up where it stopped and
        a finished one is a cheap no-op.  ``resume=False`` reruns every
        cell in place.
        """
        self.campaign_dir.mkdir(parents=True, exist_ok=True)
        self._write_manifest()
        cells = self.spec.cells()
        pending = [
            cell
            for cell in cells
            if not (resume and self.cell_complete(cell))
        ]
        if pending and self.cell_processes > 1:
            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=min(self.cell_processes, len(pending)),
                mp_context=context,
            ) as pool:
                futures = [
                    pool.submit(
                        _run_cell_task,
                        self.spec,
                        cell,
                        str(self.campaign_dir),
                        self.config,
                        self.checkpoint_every,
                        self.telemetry,
                    )
                    for cell in pending
                ]
                for future in futures:
                    future.result()
        else:
            for cell in pending:
                run_cell(
                    self.spec,
                    cell,
                    self.campaign_dir,
                    config=self.config,
                    checkpoint_every=self.checkpoint_every,
                    telemetry=self.telemetry,
                )
        summaries: List[Dict[str, object]] = []
        for cell in cells:
            path = self.campaign_dir / f"{cell.cell_id}.summary.json"
            summaries.append(json.loads(path.read_text()))
        return summaries
