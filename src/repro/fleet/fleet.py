"""Sharded fleet orchestration.

A datacenter is partitioned into *shards*: independent clusters, each
watched by its own DeepDive deployment (its own behaviour repository,
sandbox and placement manager).  The :class:`Fleet` drives all shards
epoch by epoch — stepping the hardware simulation, applying the
scenario's interference schedule, and running every shard's monitoring
epoch through the batch engine — and aggregates the fleet-wide view
(detections, migrations, profiling cost) the operator dashboards would
show.

Shards share nothing (separate clusters, sandboxes, repositories and
random generators), so the fleet can dispatch their epochs to any of the
:mod:`repro.fleet.executor` strategies — ``"serial"``, a ``"thread"``
pool, or state-owning ``"process"`` workers exchanging columnar epoch
results.  Results merge in shard insertion order and each shard's
evolution is independent of execution order, so a fleet run is
bit-identical for any strategy and worker count — pinned by
``tests/integration/test_parallel_fleet.py``.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.config import DeepDiveConfig
from repro.core.deepdive import DeepDive, EpochReport
from repro.core.events import InterferenceDetectedEvent, MigrationEvent
from repro.fleet.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
)
from repro.fleet.executor import (
    EXECUTOR_KINDS,
    ColumnarFleetReport,
    ProcessShardExecutor,
    make_shard_executor,
)
from repro.fleet.faults import FaultPlan
from repro.fleet.lifecycle import LifecycleEngine, LifecycleStats
from repro.fleet.runtime import FleetRuntimeBase
from repro.fleet.supervisor import FaultPolicy
from repro.fleet.telemetry import (
    C_SNAPSHOTS,
    TelemetryConfig,
    TelemetryRegistry,
    resolve_telemetry,
)
from repro.virt.cluster import Cluster
from repro.virt.sandbox import SandboxEnvironment


class FleetShard:
    """One independently managed cluster plus its DeepDive deployment."""

    def __init__(
        self,
        shard_id: str,
        cluster: Cluster,
        config: Optional[DeepDiveConfig] = None,
        engine: str = "batch",
        mitigate: bool = False,
        sandbox: Optional[SandboxEnvironment] = None,
        baseline_loads: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.shard_id = shard_id
        self.cluster = cluster
        self.config = config or DeepDiveConfig()
        self.deepdive = DeepDive(
            cluster,
            sandbox=sandbox,
            config=self.config,
            mitigate=mitigate,
            engine=engine,
        )
        #: Steady-state offered load per VM (fraction of nominal); VMs
        #: absent from the mapping (e.g. scenario stress VMs) keep the
        #: load set directly on their host.  May be mutated directly;
        #: changes are pushed to the hosts on the next epoch.
        self.baseline_loads: Dict[str, float] = dict(baseline_loads or {})
        #: Snapshot of the loads last pushed to hosts and proxies.
        self._pushed_loads: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    def app_ids(self) -> List[str]:
        """Distinct applications running on this shard, sorted."""
        return sorted({vm.app_id for _, vm in self.cluster.all_vms().values()})

    def bootstrap(self, app_ids: Optional[Sequence[str]] = None) -> None:
        """Bootstrap one VM per application through the sandbox sweep.

        By default only applications with a steady-state baseline load
        are bootstrapped — scenario stress VMs start idle and are learned
        (or diagnosed) on the fly, exactly like an unknown tenant.
        """
        if app_ids is None:
            loaded_apps = {
                vm.app_id
                for name, (_, vm) in self.cluster.all_vms().items()
                if self.baseline_loads.get(name, 0.0) > 0.0
            }
            app_ids = sorted(loaded_apps)
        bootstrapped = set()
        for vm_name, (_, vm) in sorted(self.cluster.all_vms().items()):
            if vm.app_id in app_ids and vm.app_id not in bootstrapped:
                self.deepdive.bootstrap_vm(vm_name)
                bootstrapped.add(vm.app_id)

    def set_baseline_loads(self, loads: Mapping[str, float]) -> None:
        """Replace the steady-state loads (pushed on the next epoch)."""
        self.baseline_loads = dict(loads)

    def run_epoch(
        self,
        analyze: bool = True,
        telemetry: Optional["TelemetryRegistry"] = None,
        epoch: int = 0,
    ) -> EpochReport:
        """Advance the shard by one epoch: simulate, then monitor.

        The steady-state baseline loads are pushed to the hosts and the
        monitoring proxies only when they changed (hosts retain per-VM
        loads between epochs), so the unchanged steady-state map adds no
        per-VM work to the hot loop.  Under lifecycle churn the map
        changes most epochs, so only the *changed* entries are pushed —
        unchanged VMs keep their host-resident load and their last proxy
        observation, exactly as in a steady fleet.

        ``telemetry`` (a registry or worker-side span buffer) records
        ``simulate``/``monitor`` spans around the two halves; ``None``
        — the off-sample and telemetry-off case — keeps the exact
        untimed path.
        """
        if self.baseline_loads != self._pushed_loads:
            pushed = self._pushed_loads
            if pushed is None:
                delta = dict(self.baseline_loads)
            else:
                delta = {
                    name: load
                    for name, load in self.baseline_loads.items()
                    if pushed.get(name) != load
                }
            self._pushed_loads = dict(self.baseline_loads)
            if delta:
                if telemetry is None:
                    self.cluster.step(loads=delta)
                    return self.deepdive.run_epoch(loads=delta, analyze=analyze)
                with telemetry.span("simulate", epoch):
                    self.cluster.step(loads=delta)
                with telemetry.span("monitor", epoch):
                    return self.deepdive.run_epoch(loads=delta, analyze=analyze)
        if telemetry is None:
            self.cluster.step()
            return self.deepdive.run_epoch(analyze=analyze)
        with telemetry.span("simulate", epoch):
            self.cluster.step()
        with telemetry.span("monitor", epoch):
            return self.deepdive.run_epoch(analyze=analyze)

    # ------------------------------------------------------------------
    def detections(self) -> List[InterferenceDetectedEvent]:
        return self.deepdive.events.detections()

    def migrations(self) -> List[MigrationEvent]:
        return self.deepdive.events.migrations()


@dataclass
class FleetEpochReport:
    """The fleet-wide outcome of one monitoring epoch."""

    epoch: int
    #: Per-shard epoch reports (shard id -> report).
    shard_reports: Dict[str, EpochReport] = field(default_factory=dict)
    #: Shards excluded this epoch by quarantined workers (graceful
    #: degradation) — explicit, so a degraded fleet never just shrinks.
    missing_shards: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.missing_shards)

    def observations(self) -> int:
        return sum(len(r.observations) for r in self.shard_reports.values())

    def analyzer_invocations(self) -> int:
        return sum(r.analyzer_invocations() for r in self.shard_reports.values())

    def confirmed_interference(self) -> List[Tuple[str, str]]:
        """(shard id, vm name) pairs with confirmed interference this epoch."""
        return [
            (shard_id, vm_name)
            for shard_id, report in self.shard_reports.items()
            for vm_name in report.confirmed_interference()
        ]

    def confirmed_count(self) -> int:
        """Number of confirmed-interference observations this epoch.

        Counted in one pass over the per-shard observations — unlike
        ``len(confirmed_interference())`` no (shard, VM) tuple list is
        materialised, which matters on the summary hot loop where the
        region layer multiplies shard counts.
        """
        return sum(
            1
            for report in self.shard_reports.values()
            for obs in report.observations.values()
            if obs.interference_confirmed
        )

    def action_histogram(self) -> Dict[str, int]:
        """Warning-action counts across the whole fleet."""
        histogram: Dict[str, int] = {}
        for report in self.shard_reports.values():
            for observation in report.observations.values():
                key = observation.warning.action.value
                histogram[key] = histogram.get(key, 0) + 1
        return histogram


@dataclass
class FleetRunSummary:
    """Memory-bounded aggregate of a multi-epoch fleet run.

    Returned by :meth:`Fleet.run` with ``keep_reports=False``: instead of
    one :class:`FleetEpochReport` per epoch (every VM observation of
    every epoch stays alive), only running totals and the final epoch's
    report are retained — constant memory regardless of run length.
    """

    epochs: int = 0
    observations: int = 0
    analyzer_invocations: int = 0
    #: Total (shard, VM, epoch) interference confirmations.
    confirmed_interference: int = 0
    #: Warning-action counts accumulated over the whole run.
    action_histogram: Dict[str, int] = field(default_factory=dict)
    #: The last epoch's full report (steady-state snapshot).
    final_report: Optional[FleetEpochReport] = None
    #: Union of the shards any epoch ran without (quarantined workers),
    #: in first-seen order — a degraded run manifests its gaps.
    missing_shards: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.missing_shards)

    def _note_missing(self, missing: Sequence[str]) -> None:
        for shard_id in missing:
            if shard_id not in self.missing_shards:
                self.missing_shards = self.missing_shards + (shard_id,)

    def accumulate(self, report: FleetEpochReport) -> None:
        """Fold one epoch report into the running totals."""
        self.epochs += 1
        self.observations += report.observations()
        self.analyzer_invocations += report.analyzer_invocations()
        self.confirmed_interference += report.confirmed_count()
        for action, count in report.action_histogram().items():
            self.action_histogram[action] = (
                self.action_histogram.get(action, 0) + count
            )
        self._note_missing(getattr(report, "missing_shards", ()))
        self.final_report = report

    def extend(self, later: "FleetRunSummary") -> "FleetRunSummary":
        """Append a continuation run's totals to this summary, in place.

        The sequential counterpart to :meth:`merge`: ``later`` covers the
        epochs run *after* these (the shape a snapshot/resume cycle
        produces — the checkpoint carries the summary so far, the
        resumed fleet returns the rest).  Counters add, the histogram
        merges, and ``later``'s final report (the newer steady-state
        snapshot) wins.  Returns ``self`` for chaining.
        """
        self.epochs += later.epochs
        self.observations += later.observations
        self.analyzer_invocations += later.analyzer_invocations
        self.confirmed_interference += later.confirmed_interference
        for action, count in later.action_histogram.items():
            self.action_histogram[action] = (
                self.action_histogram.get(action, 0) + count
            )
        self._note_missing(later.missing_shards)
        if later.final_report is not None:
            self.final_report = later.final_report
        return self

    @classmethod
    def merge(cls, summaries: Sequence["FleetRunSummary"]) -> "FleetRunSummary":
        """Roll up per-region (or per-partition) summaries into one.

        The summaries must cover the *same* epochs of disjoint shard
        sets — exactly what each region of a
        :class:`~repro.fleet.region.RegionalFleet` produces when its
        shards are run region by region.  Counters add, histograms
        merge, and the final reports (all from the same last epoch)
        concatenate their shard reports in the order the summaries are
        given — so merging regions in region insertion order reproduces
        the flat fleet's summary bit for bit.  Constant memory: nothing
        beyond the merged totals and one final report is retained.
        """
        summaries = list(summaries)
        if not summaries:
            raise ValueError("merge needs at least one summary")
        epochs = {s.epochs for s in summaries}
        if len(epochs) != 1:
            raise ValueError(
                f"summaries cover different epoch counts: {sorted(epochs)}"
            )
        out = cls(epochs=summaries[0].epochs)
        for summary in summaries:
            out._note_missing(summary.missing_shards)
            out.observations += summary.observations
            out.analyzer_invocations += summary.analyzer_invocations
            out.confirmed_interference += summary.confirmed_interference
            for action, count in summary.action_histogram.items():
                out.action_histogram[action] = (
                    out.action_histogram.get(action, 0) + count
                )
        finals = [s.final_report for s in summaries]
        if all(final is not None for final in finals):
            kinds = {type(final) for final in finals}
            final_epochs = {final.epoch for final in finals}
            if len(kinds) != 1 or len(final_epochs) != 1:
                raise ValueError(
                    "final reports disagree on epoch or report kind; "
                    "summaries are not partitions of one run"
                )
            merged_shards: Dict[str, object] = {}
            for final in finals:
                for shard_id, report in final.shard_reports.items():
                    if shard_id in merged_shards:
                        raise ValueError(
                            f"shard {shard_id!r} appears in more than one "
                            "summary; partitions must be disjoint"
                        )
                    merged_shards[shard_id] = report
            merged_missing: List[str] = []
            for final in finals:
                for shard_id in getattr(final, "missing_shards", ()):
                    if shard_id not in merged_missing:
                        merged_missing.append(shard_id)
            out.final_report = kinds.pop()(
                epoch=final_epochs.pop(),
                shard_reports=merged_shards,
                missing_shards=tuple(merged_missing),
            )
        return out


class Fleet(FleetRuntimeBase):
    """Many shards, one epoch clock, one interference schedule.

    Implements the :class:`~repro.fleet.runtime.FleetRuntime` surface:
    :meth:`~repro.fleet.runtime.FleetRuntimeBase.stream` /
    :meth:`~repro.fleet.runtime.FleetRuntimeBase.run` /
    :meth:`~repro.fleet.runtime.FleetRuntimeBase.run_epoch` configured
    by a typed :class:`~repro.fleet.runtime.RunOptions`, plus
    :meth:`snapshot` / :meth:`resume` for checkpointed long-lived runs.

    Parameters
    ----------
    shards:
        The independently managed shards (unique ids).
    schedule:
        Scheduled stress windows applied before each epoch.
    max_workers:
        Worker count for the thread/process strategies; ``None`` or 1
        keeps the serial loop (with an explicit ``executor`` the default
        is ``os.cpu_count()``).  Shards share no state, so results are
        identical for any worker count (the merge order is always shard
        insertion order).
    executor:
        Shard execution strategy: ``"serial"``, ``"thread"`` or
        ``"process"`` (see :mod:`repro.fleet.executor`).  The default
        infers ``"thread"`` when ``max_workers > 1`` (the pre-existing
        behaviour) and ``"serial"`` otherwise.  With ``"process"``, the
        worker processes own the shard state for the whole run: the
        fleet's own shard objects are the start-of-run template, and
        mid-run mutations of them (or of ``schedule``) do not reach the
        workers — fleet statistics are fetched from the workers instead.
    lifecycle:
        Optional :class:`~repro.fleet.lifecycle.LifecycleEngine` whose
        timeline (VM churn, host maintenance, load phases) is applied
        before each epoch's simulation step, wherever the shard state
        lives.  The timeline is validated against the fleet topology at
        construction; an event referencing an unknown shard or host
        raises :class:`ValueError` immediately.
    telemetry:
        Observability for the run: a
        :class:`~repro.fleet.telemetry.TelemetryConfig` builds a fresh
        :class:`~repro.fleet.telemetry.TelemetryRegistry`, an existing
        registry is shared (regional fleets hand one bus to every inner
        fleet), and ``None`` defers to the ``REPRO_FLEET_PROFILE``
        environment switch (off by default).  Telemetry never changes
        decisions — runs are bit-identical with it off, on, or sampled
        (``tests/property/test_telemetry_equivalence.py``).
    """

    def __init__(
        self,
        shards: Sequence[FleetShard],
        schedule: Optional[Sequence["ScheduledStress"]] = None,
        max_workers: Optional[int] = None,
        executor: Optional[str] = None,
        lifecycle: Optional["LifecycleEngine"] = None,
        fault_policy: Optional["FaultPolicy"] = None,
        fault_plan: Optional["FaultPlan"] = None,
        telemetry: Union[TelemetryConfig, TelemetryRegistry, None] = None,
    ) -> None:
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if executor is None:
            executor = (
                "thread" if max_workers is not None and max_workers > 1 else "serial"
            )
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTOR_KINDS}"
            )
        if (
            fault_policy is not None or fault_plan is not None
        ) and executor != "process":
            raise ValueError(
                "fault_policy/fault_plan only apply to the process executor "
                "(serial and thread fleets have no workers to supervise); "
                f"got executor {executor!r}"
            )
        if executor in ("thread", "process") and max_workers is None:
            max_workers = os.cpu_count() or 1
        self.shards: Dict[str, FleetShard] = {}
        for shard in shards:
            if shard.shard_id in self.shards:
                raise ValueError(f"duplicate shard id {shard.shard_id!r}")
            self.shards[shard.shard_id] = shard
        self.schedule: List[ScheduledStress] = list(schedule or [])
        self.lifecycle = lifecycle
        if lifecycle is not None:
            lifecycle.validate(self.shards)
        self.current_epoch = 0
        self.max_workers = max_workers
        self.executor = executor
        #: Worker supervision (restart/quarantine) for the process
        #: executor; ``None`` keeps PR 6's detect-and-refuse semantics.
        self.fault_policy = fault_policy
        #: Injected fault schedule (chaos tests / CI).
        self.fault_plan = fault_plan
        #: Live telemetry bus, or ``None`` (off) — the hot loop checks
        #: only this one reference.
        self.telemetry = resolve_telemetry(telemetry)
        self._strategy = None
        #: Last statistics snapshot fetched from process workers (kept
        #: so the fleet stays inspectable after :meth:`shutdown`).
        self._last_collected: Optional[Dict[str, Dict[str, object]]] = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def total_vms(self) -> int:
        return sum(s.cluster.vm_count() for s in self.shards.values())

    def total_hosts(self) -> int:
        return sum(len(s.cluster.hosts) for s in self.shards.values())

    def shard(self, shard_id: str) -> FleetShard:
        return self.shards[shard_id]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def bootstrap(self) -> None:
        """Bootstrap every shard's loaded applications.

        With the process strategy the bootstrap runs inside the workers
        (spawning them if needed) so the learned repositories live with
        the shard state.
        """
        strategy = self._shard_strategy()
        strategy.bootstrap()
        self._last_collected = None

    def _shard_strategy(self):
        if self._strategy is None:
            self._strategy = make_shard_executor(
                self.executor,
                self.shards,
                self.schedule,
                max_workers=self.max_workers or 1,
                lifecycle=self.lifecycle,
                fault_policy=self.fault_policy,
                fault_plan=self.fault_plan,
                telemetry=self.telemetry,
            )
        return self._strategy

    def _collected(self) -> Optional[Dict[str, Dict[str, object]]]:
        """Worker-side shard statistics, or ``None`` when state is local.

        The snapshot is cached between epochs — worker state only changes
        when an epoch runs, so consecutive ``stats()``/``detections()``/
        ``migrations()`` calls share one worker round trip.
        """
        strategy = self._strategy
        if isinstance(strategy, ProcessShardExecutor) and strategy.started:
            if self._last_collected is None:
                self._last_collected = strategy.collect()
        return self._last_collected

    def _step_epoch(
        self, analyze: bool, report: str
    ) -> Union[FleetEpochReport, ColumnarFleetReport]:
        """Advance the whole fleet by one epoch (the stream primitive).

        Shards run under the configured execution strategy; reports
        always merge in shard insertion order, so the outcome is
        identical to the serial loop for any worker count.  ``report``
        is the resolved mode: ``"full"`` returns a
        :class:`FleetEpochReport` with per-VM observations,
        ``"columnar"`` a
        :class:`~repro.fleet.executor.ColumnarFleetReport` of flat
        decision arrays — the process strategy's native exchange format.
        Under the process strategy the columnar arrays are NumPy views
        into the workers' double-buffered shared-memory segments
        (:mod:`repro.fleet.shm`), valid until the same buffer's next
        turn — two further columnar epochs; copy them to hold a report
        longer.
        """
        if report not in ("full", "columnar"):
            raise ValueError(f"unknown report mode {report!r}")
        strategy = self._shard_strategy()
        shard_reports = strategy.run_shard_epochs(
            self.current_epoch, analyze=analyze, report=report
        )
        # Worker-side state advanced; drop the cached statistics snapshot.
        self._last_collected = None
        missing = tuple(getattr(strategy, "quarantined_shards", ()) or ())
        if report == "full":
            out: Union[FleetEpochReport, ColumnarFleetReport] = FleetEpochReport(
                epoch=self.current_epoch,
                shard_reports=shard_reports,
                missing_shards=missing,
            )
        else:
            out = ColumnarFleetReport(
                epoch=self.current_epoch,
                shard_reports=shard_reports,
                missing_shards=missing,
            )
        self.current_epoch += 1
        return out

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def _gather_state(
        self,
    ) -> Tuple[
        Dict[str, FleetShard],
        Optional[Dict[str, Dict[str, object]]],
        Tuple[str, ...],
    ]:
        """The live shards (in shard order), lifecycle state, and the
        shards missing from the snapshot (quarantined workers).

        Serial/thread fleets own their state locally; a started process
        fleet fetches the live shard objects and lifecycle state back
        from its workers (the parent's objects are only the start-of-run
        template then).  A degraded process fleet returns a *partial*
        snapshot: the quarantined shards come back in the third slot so
        the checkpoint can manifest them explicitly.
        """
        strategy = self._strategy
        if isinstance(strategy, ProcessShardExecutor):
            state = strategy.snapshot_state()
            if state is not None:
                return state
        lifecycle_state = (
            self.lifecycle.state_dict() if self.lifecycle is not None else None
        )
        return dict(self.shards), lifecycle_state, ()

    def snapshot(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        summary: Optional[FleetRunSummary] = None,
        extra: Optional[object] = None,
    ) -> Checkpoint:
        """Checkpoint the live fleet into a versioned, resumable state.

        Captures everything a bit-identical continuation needs — the
        shard objects (clusters, DeepDive deployments, counter rings,
        RNG states), the stress schedule, the lifecycle timeline with
        its accumulated per-shard state, and the epoch clock — wherever
        the state lives: a started process fleet snapshots its workers'
        live state, anything else pickles locally.  Snapshotting is
        read-only and does not perturb the run.

        ``summary`` stashes the run summary accumulated so far (a
        service resumes its totals along with the state); ``extra`` is
        an arbitrary picklable sidecar for callers like the campaign
        runner's mid-cell checkpoints.  With ``path`` the checkpoint is
        also written atomically to disk.  Resume with :meth:`resume`.

        A telemetry-carrying fleet stores its counter and span totals
        in the payload, so a resumed fleet's Prometheus counters stay
        monotone across the restart.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return self._snapshot_inner(path, summary=summary, extra=extra)
        # Counted before the state capture so the checkpoint's carried
        # totals include the snapshot producing them (resume monotone).
        telemetry.inc(C_SNAPSHOTS)
        with telemetry.span("snapshot", self.current_epoch):
            checkpoint = self._snapshot_inner(path, summary=summary, extra=extra)
        telemetry.log_event("snapshot", epoch=int(self.current_epoch))
        return checkpoint

    def _snapshot_inner(
        self,
        path: Optional[Union[str, Path]],
        *,
        summary: Optional[FleetRunSummary],
        extra: Optional[object],
    ) -> Checkpoint:
        shards, lifecycle_state, missing_shards = self._gather_state()
        payload: Dict[str, object] = {
            "shards": list(shards.values()),
            "schedule": list(self.schedule),
            "timeline": (
                self.lifecycle.timeline if self.lifecycle is not None else None
            ),
            "admission": (
                self.lifecycle.admission if self.lifecycle is not None else None
            ),
            "record_decisions": (
                bool(self.lifecycle.record_decisions)
                if self.lifecycle is not None
                else False
            ),
            "lifecycle_state": lifecycle_state,
            "summary": summary,
            "extra": extra,
            "telemetry": (
                (self.telemetry.config, self.telemetry.state_dict())
                if self.telemetry is not None
                else None
            ),
        }
        meta: Dict[str, object] = {
            "version": CHECKPOINT_VERSION,
            "kind": "fleet",
            "epoch": int(self.current_epoch),
            "executor": self.executor,
            "max_workers": self.max_workers,
            "shard_ids": list(shards),
            "total_vms": sum(s.cluster.vm_count() for s in shards.values()),
            "total_hosts": sum(len(s.cluster.hosts) for s in shards.values()),
            "has_lifecycle": self.lifecycle is not None,
            "has_summary": summary is not None,
            "has_extra": extra is not None,
            "has_telemetry": self.telemetry is not None,
            "regions": None,
            "missing_shards": list(missing_shards),
            "created_unix": time.time(),
        }
        checkpoint = Checkpoint(
            meta=meta,
            payload=pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )
        if path is not None:
            checkpoint.save(path)
        return checkpoint

    @classmethod
    def resume(
        cls,
        source: Union[Checkpoint, str, Path],
        *,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
        telemetry: Union[TelemetryConfig, TelemetryRegistry, None] = None,
    ) -> "Fleet":
        """Rebuild a fleet from a checkpoint; it continues bit-identically.

        ``source`` is a :class:`~repro.fleet.checkpoint.Checkpoint` or a
        path to one.  ``executor`` / ``max_workers`` override the
        checkpointed configuration — a run snapshotted under one
        executor may resume under another at any worker count, and the
        equivalence contract still holds (pinned by
        ``tests/property/test_checkpoint_equivalence.py``).
        ``telemetry`` overrides the checkpointed telemetry
        configuration; either way the checkpoint's carried counter and
        span totals fold into the resumed registry, so exported
        counters continue monotonically.
        """
        checkpoint = (
            source if isinstance(source, Checkpoint) else Checkpoint.load(source)
        )
        if checkpoint.kind != "fleet":
            raise CheckpointError(
                f"checkpoint holds a {checkpoint.kind!r} fleet; resume it "
                "with RegionalFleet.resume (or repro.fleet.resume_fleet)"
            )
        state = checkpoint.state()
        lifecycle = _rebuild_lifecycle(state)
        missing = tuple(checkpoint.meta.get("missing_shards") or ())
        if lifecycle is not None and missing:
            # A degraded checkpoint carries only the surviving shards;
            # drop the timeline events that target the quarantined ones
            # or topology validation would (rightly) refuse them.
            lifecycle = lifecycle.subset(
                [shard.shard_id for shard in state["shards"]]
            )
        telemetry_state = state.get("telemetry")
        if telemetry is None and telemetry_state is not None:
            telemetry = telemetry_state[0]
        fleet = cls(
            state["shards"],
            schedule=state["schedule"],
            max_workers=(
                checkpoint.meta["max_workers"] if max_workers is None else max_workers
            ),
            executor=(
                checkpoint.meta["executor"] if executor is None else executor
            ),
            lifecycle=lifecycle,
            telemetry=telemetry,
        )
        if fleet.telemetry is not None and telemetry_state is not None:
            fleet.telemetry.load_state(telemetry_state[1])
        fleet.current_epoch = checkpoint.epoch
        return fleet

    def shutdown(self) -> None:
        """Release the shard workers (no-op for serial fleets).

        For a process fleet the final worker-side statistics are fetched
        first, so :meth:`stats`, :meth:`detections` and
        :meth:`migrations` keep answering after the workers are gone.
        Restarting a shut-down process fleet would silently reset the
        worker state to the start-of-run template, so further epochs are
        refused; thread and serial fleets can keep running.

        Idempotent and failure-safe: calling it again, or after a
        worker death broke the run mid-flight, is a clean no-op — the
        pools are always released and the shared-memory transport
        segments unlinked, whatever the final collect did.
        """
        strategy = self._strategy
        if strategy is None:
            if self.telemetry is not None:
                self.telemetry.close()
            return
        if isinstance(strategy, ProcessShardExecutor):
            try:
                if strategy.started:
                    try:
                        self._last_collected = strategy.collect()
                    except Exception:
                        # Broken workers (e.g. one was killed mid-run)
                        # can't answer a final collect; keep whatever
                        # snapshot was already cached.
                        pass
            finally:
                # Always release the pools and unlink the shm transport
                # segments — even when collect failed with something
                # harsher than a broken pool (KeyboardInterrupt in a
                # long-lived service, an unpicklable result).
                strategy.shutdown()
        else:
            strategy.shutdown()
            self._strategy = None
        if self.telemetry is not None:
            # Flush the structured event log; harmless for shared
            # registries (the stream lazily reopens on the next event).
            self.telemetry.close()

    # ------------------------------------------------------------------
    # Fleet-wide statistics
    # ------------------------------------------------------------------
    def detections(self) -> List[Tuple[str, InterferenceDetectedEvent]]:
        collected = self._collected()
        if collected is not None:
            # .get: a quarantined shard has no worker to report for it.
            return [
                (shard_id, event)
                for shard_id in self.shards
                for event in collected.get(shard_id, {}).get("detections", ())
            ]
        return [
            (shard_id, event)
            for shard_id, shard in self.shards.items()
            for event in shard.detections()
        ]

    def migrations(self) -> List[Tuple[str, MigrationEvent]]:
        collected = self._collected()
        if collected is not None:
            return [
                (shard_id, event)
                for shard_id in self.shards
                for event in collected.get(shard_id, {}).get("migrations", ())
            ]
        return [
            (shard_id, event)
            for shard_id, shard in self.shards.items()
            for event in shard.migrations()
        ]

    def stats(self) -> Dict[str, float]:
        """Aggregate fleet statistics (the operator dashboard numbers).

        Under the process strategy the numbers come from the workers'
        live shard state (fetched on demand), not from the fleet's
        start-of-run template objects.
        """
        collected = self._collected()
        if collected is not None:
            per_shard = list(collected.values())
            analyzer_invocations = sum(
                s["analyzer_invocations"] for s in per_shard
            )
            profiling_seconds = sum(s["profiling_seconds"] for s in per_shard)
            repository_bytes = sum(s["repository_bytes"] for s in per_shard)
            detections = sum(len(s["detections"]) for s in per_shard)
            migrations = sum(len(s["migrations"]) for s in per_shard)
            # Under lifecycle churn the parent's shard objects are a
            # stale template; the workers report the live topology.
            vms = sum(s.get("vms", 0) for s in per_shard)
            hosts = sum(s.get("hosts", 0) for s in per_shard)
        else:
            analyzer_invocations = sum(
                s.deepdive.analyzer_invocations() for s in self.shards.values()
            )
            profiling_seconds = sum(
                s.deepdive.total_profiling_seconds() for s in self.shards.values()
            )
            repository_bytes = sum(
                s.deepdive.repository_size_bytes() for s in self.shards.values()
            )
            # Count per shard instead of via self.detections()/
            # self.migrations(): those build one fleet-wide list of
            # (shard, event) tuples just to be len()'d, which a regional
            # fleet would pay per region per snapshot.
            detections = sum(
                len(s.detections()) for s in self.shards.values()
            )
            migrations = sum(
                len(s.migrations()) for s in self.shards.values()
            )
            vms = self.total_vms()
            hosts = self.total_hosts()
        return {
            "shards": float(len(self.shards)),
            "hosts": float(hosts),
            "vms": float(vms),
            "epochs": float(self.current_epoch),
            "detections": float(detections),
            "migrations": float(migrations),
            "analyzer_invocations": float(analyzer_invocations),
            "profiling_seconds": float(profiling_seconds),
            "repository_bytes": float(repository_bytes),
        }

    def lifecycle_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-shard lifecycle counters (arrivals, departures, drains...).

        Empty when the fleet has no lifecycle engine; otherwise one
        entry per shard (all-zero counters for shards the timeline never
        touched), whichever executor runs the engine.  Under the process
        strategy the counters come from the workers (where the engine
        subsets actually ran); otherwise from the fleet's own engine.
        """
        if self.lifecycle is None:
            return {}
        collected = self._collected()
        if collected is not None:
            per_shard = {
                shard_id: dict(collected.get(shard_id, {}).get("lifecycle") or {})
                for shard_id in self.shards
            }
        else:
            stats = self.lifecycle.stats_dict()
            per_shard = {
                shard_id: stats.get(shard_id, {}) for shard_id in self.shards
            }
        zeros = LifecycleStats().as_dict()
        return {
            shard_id: (stats if stats else dict(zeros))
            for shard_id, stats in per_shard.items()
        }

    def worker_health(self) -> List[Dict[str, object]]:
        """Per-worker health rows (pid, restarts, heartbeat age, ...).

        Populated for a started process fleet; serial/thread fleets (and
        process fleets before their first epoch) report no workers.
        """
        strategy = self._strategy
        health = getattr(strategy, "worker_health", None)
        if callable(health):
            return health()
        return []

    @property
    def quarantined_shards(self) -> Tuple[str, ...]:
        """Shards excluded by quarantined workers (graceful degradation)."""
        return tuple(getattr(self._strategy, "quarantined_shards", ()) or ())


def _rebuild_lifecycle(state: Mapping[str, object]) -> Optional[LifecycleEngine]:
    """Reconstruct a checkpoint payload's lifecycle engine (or ``None``).

    The engine is rebuilt from its timeline and admission policy, then
    reloaded with the accumulated per-shard state (load phases, flash
    crowds, rejected arrivals, counters) so resumed lifecycle behaviour
    continues exactly where the snapshot left it.
    """
    timeline = state.get("timeline")
    if timeline is None:
        return None
    engine = LifecycleEngine(
        timeline,
        admission=state.get("admission"),
        record_decisions=bool(state.get("record_decisions", False)),
    )
    lifecycle_state = state.get("lifecycle_state")
    if lifecycle_state:
        engine.load_state(lifecycle_state)
    return engine


@dataclass(frozen=True)
class ScheduledStress:
    """A stress VM's on/off window, resolved from an interference episode."""

    shard_id: str
    vm_name: str
    start_epoch: int
    end_epoch: int
    intensity: float = 1.0
