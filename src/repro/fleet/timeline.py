"""Fleet lifecycle timelines: declarative VM churn and load dynamics.

A :class:`FleetTimeline` describes how a datacenter *changes* while
DeepDive watches it — tenants arriving and departing, hosts drained for
maintenance and returned to service, offered load breathing through
diurnal phases and spiking in flash crowds.  The timeline is purely
declarative data: every event carries the epoch it fires at, the shard
it belongs to and everything needed to apply it (arrival events carry
fully constructed workload objects, seeded at *build* time), so a
compiled timeline is deterministic and picklable — the properties the
process shard executor and the equivalence contracts rely on.

:meth:`FleetTimeline.compile` groups the events into per-epoch
:class:`EpochBatch` objects (one tuple per event kind, in the documented
in-epoch apply order) that the
:class:`~repro.fleet.lifecycle.LifecycleEngine` executes before each
simulation step.

Two generators cover the common shapes:

* :func:`churn_timeline` — open-ended tenant churn: arrival epochs are
  drawn from the :mod:`repro.queueing.arrivals` processes (Poisson or
  the burstier lognormal, as in the paper's figs. 13-14), lifetimes
  from an exponential distribution, workloads from a weighted mix;
* :meth:`FleetTimeline.from_trace` — trace-driven load replay: a
  :class:`~repro.workloads.traces.LoadTrace` (e.g. the HotMail-like
  diurnal trace) becomes a sequence of quantised :class:`LoadPhase`
  events scaling every shard's baseline loads.

Both are deterministic in their seeds; identical timelines produce
bit-identical fleet evolutions across substrates, history modes and
executor strategies (``tests/property/test_lifecycle_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.queueing.arrivals import (
    ArrivalProcess,
    LognormalArrivals,
    PoissonArrivals,
)
from repro.workloads.base import Workload
from repro.workloads.cloud import (
    DataAnalyticsWorkload,
    DataServingWorkload,
    WebSearchWorkload,
)
from repro.workloads.traces import LoadTrace

#: Workload factories timeline arrivals (and scenario builds) draw from.
ARRIVAL_WORKLOADS: Dict[str, Callable[[Optional[int]], Workload]] = {
    "data_serving": lambda seed: DataServingWorkload(seed=seed),
    "web_search": lambda seed: WebSearchWorkload(seed=seed),
    "data_analytics": lambda seed: DataAnalyticsWorkload(seed=seed),
}


# ----------------------------------------------------------------------
# Event types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VMArrival:
    """A tenant VM arrives and asks to be admitted to ``shard``.

    With ``host=None`` (the usual case) the lifecycle engine's
    interference-aware admission policy picks the host; a named host
    pins the placement (and is validated instead).  The workload object
    is constructed when the timeline is built, so applying the event
    draws no randomness.
    """

    epoch: int
    shard: str
    vm_name: str
    workload: Workload
    load: float
    vcpus: int = 2
    memory_gb: float = 2.0
    host: Optional[str] = None

    def __post_init__(self) -> None:
        _check_epoch(self)
        if not self.vm_name:
            raise ValueError("vm_name must be non-empty")
        if not 0.0 <= self.load <= 1.0:
            raise ValueError("arrival load must be in [0, 1]")
        if self.vcpus < 1:
            raise ValueError("vcpus must be at least 1")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")


@dataclass(frozen=True)
class VMDeparture:
    """A tenant VM leaves the fleet (its histories are retained)."""

    epoch: int
    shard: str
    vm_name: str

    def __post_init__(self) -> None:
        _check_epoch(self)
        if not self.vm_name:
            raise ValueError("vm_name must be non-empty")


@dataclass(frozen=True)
class HostDrain:
    """Take ``host`` out of service for maintenance.

    Resident VMs are migrated off through the existing migration path
    (destinations vetted by the admission policy); the drained host is
    excluded from admission until a :class:`HostReturn`.
    """

    epoch: int
    shard: str
    host: str

    def __post_init__(self) -> None:
        _check_epoch(self)
        if not self.host:
            raise ValueError("host must be non-empty")


@dataclass(frozen=True)
class HostReturn:
    """Return a drained ``host`` to service (admission sees it again)."""

    epoch: int
    shard: str
    host: str

    def __post_init__(self) -> None:
        _check_epoch(self)
        if not self.host:
            raise ValueError("host must be non-empty")


@dataclass(frozen=True)
class LoadPhase:
    """Set a shard's diurnal load scale.

    Every baseline load (the value set at build or arrival time) is
    multiplied by ``scale`` from this epoch on, until the next phase
    event; effective loads are clipped to ``[0, 1]``.
    """

    epoch: int
    shard: str
    scale: float

    def __post_init__(self) -> None:
        _check_epoch(self)
        if self.scale <= 0.0:
            raise ValueError("phase scale must be positive")


@dataclass(frozen=True)
class FlashCrowd:
    """A multiplicative load surge over ``[epoch, end_epoch)``.

    Stacks on top of the active :class:`LoadPhase` scale (and on other
    overlapping flash crowds); loads are always recomputed from the
    baseline values, so surges compose and unwind exactly.
    """

    epoch: int
    shard: str
    end_epoch: int
    scale: float

    def __post_init__(self) -> None:
        _check_epoch(self)
        if self.end_epoch <= self.epoch:
            raise ValueError("flash crowd needs end_epoch > epoch")
        if self.scale <= 0.0:
            raise ValueError("flash crowd scale must be positive")


LifecycleEvent = Union[
    VMArrival, VMDeparture, HostDrain, HostReturn, LoadPhase, FlashCrowd
]


def _check_epoch(event) -> None:
    if event.epoch < 0:
        raise ValueError(f"event epoch must be non-negative: {event!r}")
    if not event.shard:
        raise ValueError(f"event shard must be non-empty: {event!r}")


# ----------------------------------------------------------------------
# Compiled per-epoch batches
# ----------------------------------------------------------------------
@dataclass
class EpochBatch:
    """One epoch's lifecycle events, grouped by kind.

    The groups are stored (and applied) in the engine's documented
    in-epoch order: departures, drains, returns, load-phase changes,
    flash-crowd starts/ends, then arrivals — so arrivals are admitted
    against post-maintenance capacity and never race a same-epoch
    departure of the same name.  Within each group, events keep the
    timeline's insertion order.
    """

    departures: Tuple[VMDeparture, ...] = ()
    drains: Tuple[HostDrain, ...] = ()
    returns: Tuple[HostReturn, ...] = ()
    phases: Tuple[LoadPhase, ...] = ()
    flash_starts: Tuple[FlashCrowd, ...] = ()
    flash_ends: Tuple[FlashCrowd, ...] = ()
    arrivals: Tuple[VMArrival, ...] = ()

    def __len__(self) -> int:
        return (
            len(self.departures)
            + len(self.drains)
            + len(self.returns)
            + len(self.phases)
            + len(self.flash_starts)
            + len(self.flash_ends)
            + len(self.arrivals)
        )


# ----------------------------------------------------------------------
# The timeline
# ----------------------------------------------------------------------
@dataclass
class FleetTimeline:
    """An ordered collection of lifecycle events."""

    events: List[LifecycleEvent] = field(default_factory=list)

    def add(self, event: LifecycleEvent) -> "FleetTimeline":
        self.events.append(event)
        return self

    def extend(self, events: Sequence[LifecycleEvent]) -> "FleetTimeline":
        self.events.extend(events)
        return self

    def __len__(self) -> int:
        return len(self.events)

    def shard_ids(self) -> Tuple[str, ...]:
        """Shards referenced by at least one event, sorted."""
        return tuple(sorted({event.shard for event in self.events}))

    def horizon(self) -> int:
        """First epoch after which the timeline is fully played out."""
        horizon = 0
        for event in self.events:
            last = event.end_epoch if isinstance(event, FlashCrowd) else event.epoch
            horizon = max(horizon, last + 1)
        return horizon

    def subset(self, shard_ids: Sequence[str]) -> "FleetTimeline":
        """The events belonging to ``shard_ids`` (insertion order kept).

        The process shard executor ships each worker exactly its own
        shards' events, so workers never see (or validate) state they
        do not own.
        """
        members = set(shard_ids)
        return FleetTimeline(
            events=[event for event in self.events if event.shard in members]
        )

    def compile(self) -> Dict[int, EpochBatch]:
        """Group the events into per-epoch :class:`EpochBatch` columns.

        A :class:`FlashCrowd` contributes twice: a start entry at its
        ``epoch`` and an end entry at its ``end_epoch`` (the engine
        recomputes loads from the baselines on both edges, so stacked
        surges unwind exactly).  Insertion order is preserved within
        each group, making the compiled timeline — and everything the
        engine derives from it — deterministic.
        """
        grouped: Dict[int, Dict[str, List[LifecycleEvent]]] = {}

        def bucket(epoch: int, kind: str, event: LifecycleEvent) -> None:
            grouped.setdefault(epoch, {}).setdefault(kind, []).append(event)

        for event in self.events:
            if isinstance(event, VMDeparture):
                bucket(event.epoch, "departures", event)
            elif isinstance(event, HostDrain):
                bucket(event.epoch, "drains", event)
            elif isinstance(event, HostReturn):
                bucket(event.epoch, "returns", event)
            elif isinstance(event, LoadPhase):
                bucket(event.epoch, "phases", event)
            elif isinstance(event, FlashCrowd):
                bucket(event.epoch, "flash_starts", event)
                bucket(event.end_epoch, "flash_ends", event)
            elif isinstance(event, VMArrival):
                bucket(event.epoch, "arrivals", event)
            else:  # pragma: no cover - guarded by the Union type
                raise TypeError(f"unknown lifecycle event {event!r}")
        return {
            epoch: EpochBatch(
                **{kind: tuple(events) for kind, events in kinds.items()}
            )
            for epoch, kinds in grouped.items()
        }

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(
        cls,
        trace: LoadTrace,
        shard_ids: Sequence[str],
        reference: Optional[float] = None,
        quantum: float = 0.05,
        start_epoch: int = 0,
    ) -> "FleetTimeline":
        """Trace-driven diurnal phases from a load-intensity trace.

        The trace value at each epoch, divided by ``reference`` (default:
        the trace mean), becomes the shard-wide :class:`LoadPhase` scale.
        Scales are quantised to multiples of ``quantum`` and an event is
        emitted only when the quantised value changes, so steady stretches
        of the trace stay event-free — and the hosts' cached demand
        matrices stay valid between phase changes.
        """
        if not shard_ids:
            raise ValueError("from_trace needs at least one shard id")
        if reference is None:
            reference = float(np.mean(trace.values))
        if reference <= 0:
            raise ValueError("trace reference level must be positive")
        scales = trace.scaled(1.0 / reference).quantized(quantum).values
        timeline = cls()
        previous: Optional[float] = None
        for i, scale in enumerate(scales.tolist()):
            scale = max(scale, quantum)
            if scale != previous:
                previous = scale
                for shard in shard_ids:
                    timeline.add(
                        LoadPhase(epoch=start_epoch + i, shard=shard, scale=scale)
                    )
        return timeline


def churn_timeline(
    shard_ids: Sequence[str],
    epochs: int,
    seed: int = 0,
    arrivals: Union[str, ArrivalProcess] = "poisson",
    arrivals_per_epoch: float = 0.5,
    epoch_seconds: float = 1.0,
    mean_lifetime_epochs: float = 32.0,
    workload_mix: Optional[Mapping[str, float]] = None,
    load_range: Tuple[float, float] = (0.4, 0.7),
    vcpus: int = 2,
    memory_gb: float = 2.0,
    name_prefix: str = "tenant",
) -> FleetTimeline:
    """Open-ended tenant churn over ``[0, epochs)``.

    Arrival epochs come from a :mod:`repro.queueing.arrivals` process
    (``"poisson"``, ``"lognormal"``, or a preconfigured instance) scaled
    to ``arrivals_per_epoch``; each arrival is assigned a shard, a
    workload drawn from ``workload_mix`` (default: the scenario mix),
    a steady-state load from ``load_range`` and an exponential lifetime
    — the departure is scheduled when it falls inside the horizon.
    Every draw happens here, at build time, from one seeded generator,
    so the returned timeline is a plain deterministic value.
    """
    if not shard_ids:
        raise ValueError("churn_timeline needs at least one shard id")
    if epochs < 1:
        raise ValueError("epochs must be positive")
    if arrivals_per_epoch <= 0:
        raise ValueError("arrivals_per_epoch must be positive")
    if mean_lifetime_epochs <= 0:
        raise ValueError("mean_lifetime_epochs must be positive")
    lo, hi = load_range
    if not 0.0 < lo <= hi <= 1.0:
        raise ValueError("load_range must satisfy 0 < low <= high <= 1")
    mix = dict(
        workload_mix
        or {"data_serving": 0.45, "web_search": 0.35, "data_analytics": 0.2}
    )
    unknown = set(mix) - set(ARRIVAL_WORKLOADS)
    if unknown:
        raise ValueError(f"unknown workloads in mix: {sorted(unknown)}")
    if not mix or sum(mix.values()) <= 0:
        raise ValueError("workload_mix needs at least one positive weight")
    vms_per_day = arrivals_per_epoch * 86_400.0 / epoch_seconds
    if isinstance(arrivals, str):
        if arrivals == "poisson":
            process: ArrivalProcess = PoissonArrivals(
                vms_per_day=vms_per_day, seed=seed
            )
        elif arrivals == "lognormal":
            process = LognormalArrivals(vms_per_day=vms_per_day, seed=seed)
        else:
            raise ValueError(
                f"unknown arrival process {arrivals!r}; "
                "choose 'poisson', 'lognormal' or pass an ArrivalProcess"
            )
    else:
        process = arrivals

    arrival_epochs = process.arrival_epochs(epochs, epoch_seconds)
    rng = np.random.default_rng(seed)
    mix_names = sorted(mix)
    weights = np.array([mix[name] for name in mix_names], dtype=float)
    weights = weights / weights.sum()
    timeline = FleetTimeline()
    for j, epoch in enumerate(arrival_epochs.tolist()):
        shard = shard_ids[int(rng.integers(0, len(shard_ids)))]
        kind = mix_names[int(rng.choice(len(mix_names), p=weights))]
        workload = ARRIVAL_WORKLOADS[kind](int(rng.integers(0, 2**31 - 1)))
        load = float(rng.uniform(lo, hi))
        lifetime = max(1, int(round(rng.exponential(mean_lifetime_epochs))))
        vm_name = f"{name_prefix}{j:05d}-{kind}"
        timeline.add(
            VMArrival(
                epoch=epoch,
                shard=shard,
                vm_name=vm_name,
                workload=workload,
                load=load,
                vcpus=vcpus,
                memory_gb=memory_gb,
            )
        )
        if epoch + lifetime < epochs:
            timeline.add(
                VMDeparture(
                    epoch=epoch + lifetime, shard=shard, vm_name=vm_name
                )
            )
    return timeline
