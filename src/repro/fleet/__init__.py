"""Fleet-scale simulation on top of the batch epoch engine.

The paper evaluates DeepDive on a handful of physical machines; the
ROADMAP's north star is a production-scale system.  This package scales
the simulation to datacenter fleets: a :class:`Fleet` shards many
:class:`~repro.virt.cluster.Cluster` instances (one DeepDive deployment
each, mirroring how a real operator partitions a datacenter into
independently managed pods), drives every shard's monitoring epoch
through the vectorized :class:`~repro.metrics.matrix.MetricMatrix`
engine, and a :class:`DatacenterScenario` synthesises thousands of VMs
with mixed CloudSuite-like workloads and scheduled interference
episodes.

Past the single-fleet tier, :class:`RegionalFleet` groups shards into
regions (a fleet of fleets, bit-identical to the flat fleet at any
region/worker split) and :mod:`repro.fleet.campaign` sweeps parameter
grids of such fleets, one schema-validated columnar result file per
cell.

Long-lived service operation goes through one unified surface: both
fleet kinds implement the :class:`FleetRuntime` protocol — epoch
streaming (``stream``), buffered/summarised runs (``run``) configured by
typed :class:`RunOptions`, and versioned :class:`Checkpoint`
snapshot/resume (``snapshot()`` / ``Fleet.resume()`` /
:func:`resume_fleet`) with a bit-identical continuation guarantee.  A
:class:`FleetDashboard` renders live per-shard/per-region telemetry off
the stream (see ``examples/run_service.py``).

Observability is a first-class subsystem (:mod:`repro.fleet.telemetry`):
``Fleet(telemetry=TelemetryConfig(...))`` (or ``REPRO_FLEET_PROFILE=1``)
threads one :class:`TelemetryRegistry` through every layer — tracing
spans over simulate/monitor/dispatch/merge/lifecycle/recovery, a fixed
counter catalog, Prometheus text exposition, Chrome-trace export and a
rotating JSONL event log — without changing a single decision.

``benchmarks/test_fleet_scale.py`` measures the batched epoch engine
against the scalar per-VM reference loop on these fleets and records
the speedup in ``BENCH_fleet.json``.
"""

from repro.fleet.campaign import (
    CampaignCell,
    CampaignRunner,
    CampaignSchemaError,
    CampaignSpec,
    run_cell,
    validate_cell_npz,
)
from repro.fleet.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    validate_checkpoint_file,
)
from repro.fleet.dashboard import FleetDashboard
from repro.fleet.executor import (
    ColumnarFleetReport,
    ColumnarShardReport,
    ProcessShardExecutor,
    SerialShardExecutor,
    ThreadShardExecutor,
)
from repro.fleet.faults import FaultPlan, WorkerFault
from repro.fleet.fleet import Fleet, FleetEpochReport, FleetRunSummary, FleetShard
from repro.fleet.lifecycle import AdmissionPolicy, LifecycleEngine, LifecycleStats
from repro.fleet.region import Region, RegionalFleet, resume_fleet
from repro.fleet.runtime import FleetRuntime, RunOptions
from repro.fleet.scenario import (
    DatacenterScenario,
    InterferenceEpisode,
    build_fleet,
    build_regional_fleet,
    partition_regions,
    synthesize_datacenter,
)
from repro.fleet.supervisor import FaultPolicy, WorkerHealth
from repro.fleet.telemetry import (
    COUNTER_NAMES,
    SPAN_KINDS,
    TelemetryConfig,
    TelemetryRegistry,
    resolve_telemetry,
)
from repro.fleet.timeline import (
    FleetTimeline,
    FlashCrowd,
    HostDrain,
    HostReturn,
    LoadPhase,
    VMArrival,
    VMDeparture,
    churn_timeline,
)

__all__ = [
    "AdmissionPolicy",
    "CHECKPOINT_VERSION",
    "CampaignCell",
    "CampaignRunner",
    "CampaignSchemaError",
    "CampaignSpec",
    "Checkpoint",
    "CheckpointError",
    "ColumnarFleetReport",
    "ColumnarShardReport",
    "FaultPlan",
    "FaultPolicy",
    "Fleet",
    "FleetDashboard",
    "FleetRuntime",
    "RunOptions",
    "FleetEpochReport",
    "FleetRunSummary",
    "FleetShard",
    "FleetTimeline",
    "FlashCrowd",
    "HostDrain",
    "HostReturn",
    "LifecycleEngine",
    "LifecycleStats",
    "LoadPhase",
    "COUNTER_NAMES",
    "ProcessShardExecutor",
    "Region",
    "RegionalFleet",
    "SPAN_KINDS",
    "SerialShardExecutor",
    "TelemetryConfig",
    "TelemetryRegistry",
    "ThreadShardExecutor",
    "VMArrival",
    "VMDeparture",
    "WorkerFault",
    "WorkerHealth",
    "DatacenterScenario",
    "InterferenceEpisode",
    "build_fleet",
    "build_regional_fleet",
    "partition_regions",
    "resolve_telemetry",
    "resume_fleet",
    "run_cell",
    "synthesize_datacenter",
    "validate_cell_npz",
    "validate_checkpoint_file",
    "churn_timeline",
]
