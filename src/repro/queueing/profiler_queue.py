"""Discrete-event simulation of the profiling-server pool.

Every VM that undergoes interference generates a profiling job (an
analyzer invocation).  Jobs queue for one of ``num_servers`` dedicated
profiling servers; the reaction time of a job is its waiting time plus
its service time.  When global information is available, a job for an
application that has already been profiled recently is resolved
instantly (the warning system reuses the sibling VMs' behaviour instead
of re-profiling) — this is the mechanism behind the factor-of-two
improvement in Figures 13(b) and 14(b).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class ProfilingJob:
    """One analyzer invocation request."""

    job_id: int
    app_id: str
    arrival_time: float
    service_time: float
    #: Filled by the simulator.
    start_time: float = float("nan")
    finish_time: float = float("nan")
    served_from_cache: bool = False

    @property
    def reaction_time(self) -> float:
        """Waiting time plus service time (zero for cache hits)."""
        if self.served_from_cache:
            return 0.0
        return self.finish_time - self.arrival_time

    @property
    def waiting_time(self) -> float:
        if self.served_from_cache:
            return 0.0
        return self.start_time - self.arrival_time


@dataclass
class SimulationOutcome:
    """Aggregate results of one queueing simulation."""

    jobs: List[ProfilingJob]
    num_servers: int
    #: True when the queue kept growing (mean service > mean inter-arrival).
    unstable: bool
    #: Mean reaction time in seconds over served (non-cached) jobs.
    mean_reaction_seconds: float
    #: 95th-percentile reaction time in seconds.
    p95_reaction_seconds: float
    #: Fraction of jobs resolved from global information.
    cache_hit_fraction: float

    @property
    def mean_reaction_minutes(self) -> float:
        return self.mean_reaction_seconds / 60.0

    def acceptable(self, max_wait_minutes: float = 10.0) -> bool:
        """The paper's stability criterion: stable and waiting < 10 minutes."""
        return not self.unstable and self.mean_reaction_minutes <= max_wait_minutes


class ProfilingQueueSimulator:
    """FIFO multi-server queue with optional global-information caching."""

    def __init__(
        self,
        num_servers: int,
        use_global_information: bool = False,
        cache_ttl_seconds: float = 6 * 3600.0,
        seed: Optional[int] = 0,
    ) -> None:
        if num_servers < 1:
            raise ValueError("num_servers must be positive")
        if cache_ttl_seconds <= 0:
            raise ValueError("cache_ttl_seconds must be positive")
        self.num_servers = num_servers
        self.use_global_information = use_global_information
        self.cache_ttl_seconds = cache_ttl_seconds
        self.seed = seed

    def simulate(
        self,
        arrival_times: Sequence[float],
        service_times: Sequence[float],
        app_ids: Optional[Sequence[str]] = None,
    ) -> SimulationOutcome:
        """Run the queue over one trace of profiling jobs.

        ``arrival_times`` must be sorted ascending; ``service_times``
        gives each job's analyzer run time; ``app_ids`` enables the
        global-information cache (ignored unless the simulator was built
        with ``use_global_information=True``).
        """
        arrival_times = np.asarray(arrival_times, dtype=float)
        service_times = np.asarray(service_times, dtype=float)
        if arrival_times.shape != service_times.shape:
            raise ValueError("arrival_times and service_times must align")
        n = arrival_times.shape[0]
        if app_ids is not None and len(app_ids) != n:
            raise ValueError("app_ids must align with arrival_times")
        if n == 0:
            return SimulationOutcome(
                jobs=[],
                num_servers=self.num_servers,
                unstable=False,
                mean_reaction_seconds=0.0,
                p95_reaction_seconds=0.0,
                cache_hit_fraction=0.0,
            )
        if np.any(np.diff(arrival_times) < 0):
            raise ValueError("arrival_times must be sorted ascending")

        # Server availability times as a min-heap.
        servers: List[float] = [0.0] * self.num_servers
        heapq.heapify(servers)
        #: app_id -> last time the app was profiled (for the cache).
        last_profiled: Dict[str, float] = {}

        jobs: List[ProfilingJob] = []
        for i in range(n):
            app = app_ids[i] if app_ids is not None else f"app-{i}"
            job = ProfilingJob(
                job_id=i,
                app_id=app,
                arrival_time=float(arrival_times[i]),
                service_time=float(service_times[i]),
            )
            cached = (
                self.use_global_information
                and app in last_profiled
                and job.arrival_time - last_profiled[app] <= self.cache_ttl_seconds
            )
            if cached:
                job.served_from_cache = True
                job.start_time = job.arrival_time
                job.finish_time = job.arrival_time
            else:
                free_at = heapq.heappop(servers)
                job.start_time = max(job.arrival_time, free_at)
                job.finish_time = job.start_time + job.service_time
                heapq.heappush(servers, job.finish_time)
                last_profiled[app] = job.finish_time
            jobs.append(job)

        served = [j for j in jobs if not j.served_from_cache]
        # Reaction times include cache hits (zero reaction): a VM whose
        # application was profiled recently is handled instantly from the
        # sibling VMs' behaviour, which is exactly how global information
        # buys the factor-of-two improvement the paper reports.
        reactions = np.array([j.reaction_time for j in jobs]) if jobs else np.zeros(1)
        cache_hits = sum(1 for j in jobs if j.served_from_cache)

        # Stability: offered load versus capacity over the simulated span.
        # The span is floored at one service time so a trace with a single
        # (or nearly simultaneous) job is not misread as overload.
        offered = float(np.sum([j.service_time for j in served]))
        span = max(
            float(arrival_times[-1] - arrival_times[0]),
            float(np.max(service_times)) if n else 1.0,
        )
        utilization = offered / (span * self.num_servers)
        unstable = utilization > 1.0

        return SimulationOutcome(
            jobs=jobs,
            num_servers=self.num_servers,
            unstable=unstable,
            mean_reaction_seconds=float(np.mean(reactions)),
            p95_reaction_seconds=float(np.percentile(reactions, 95)),
            cache_hit_fraction=cache_hits / n,
        )
