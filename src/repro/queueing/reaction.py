"""Reaction-time studies (Figures 13 and 14).

Drives the profiling-queue simulator across the paper's parameter
sweeps: fraction of VMs undergoing interference (x axis), number of
profiling servers (curves), arrival process (Poisson vs lognormal),
and Zipf popularity exponent (Figure 13(c)/14(c)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.queueing.arrivals import ArrivalProcess, PoissonArrivals
from repro.queueing.popularity import ZipfPopularity
from repro.queueing.profiler_queue import ProfilingQueueSimulator


@dataclass
class ReactionTimePoint:
    """One point of a reaction-time curve."""

    interference_fraction: float
    num_servers: int
    mean_reaction_minutes: float
    unstable: bool
    acceptable: bool
    cache_hit_fraction: float


class ReactionTimeStudy:
    """Parameter sweep over interference fraction and server count."""

    def __init__(
        self,
        arrivals: Optional[ArrivalProcess] = None,
        vms_per_day: float = 1000.0,
        days: float = 7.0,
        mean_service_seconds: float = 240.0,
        service_cv: float = 0.3,
        max_wait_minutes: float = 10.0,
        seed: int = 0,
    ) -> None:
        """
        Parameters
        ----------
        arrivals:
            The arrival process (defaults to Poisson at ``vms_per_day``).
        days:
            Length of the simulated horizon.
        mean_service_seconds:
            Mean analyzer service time; the paper replays the service
            times recorded in its live experiments, which average a few
            minutes per invocation (cloning + a short profiling run).
        service_cv:
            Coefficient of variation of the service-time distribution.
        max_wait_minutes:
            The paper stops plotting curves once the waiting time
            becomes "excessive" (more than 10 minutes).
        """
        self.arrivals = arrivals or PoissonArrivals(vms_per_day=vms_per_day, seed=seed)
        self.days = days
        self.mean_service_seconds = mean_service_seconds
        self.service_cv = service_cv
        self.max_wait_minutes = max_wait_minutes
        self.seed = seed

    # ------------------------------------------------------------------
    def _job_trace(
        self,
        interference_fraction: float,
        popularity: Optional[ZipfPopularity],
    ):
        """Arrival times, service times and app ids of the profiling jobs."""
        total_vms = int(round(self.arrivals.vms_per_day * self.days))
        arrival_times = self.arrivals.arrival_times(total_vms)
        rng = np.random.default_rng(self.seed + 1)
        needs_profiling = rng.random(total_vms) < interference_fraction
        job_arrivals = arrival_times[needs_profiling]
        count = job_arrivals.shape[0]
        sigma = self.service_cv * self.mean_service_seconds
        service_times = np.clip(
            rng.normal(self.mean_service_seconds, sigma, size=count),
            self.mean_service_seconds * 0.2,
            self.mean_service_seconds * 3.0,
        )
        if popularity is None:
            app_ids = None
        else:
            all_apps = popularity.assign(total_vms)
            app_ids = [a for a, keep in zip(all_apps, needs_profiling) if keep]
        return job_arrivals, service_times, app_ids

    # ------------------------------------------------------------------
    def sweep(
        self,
        interference_fractions: Sequence[float],
        server_counts: Sequence[int],
        use_global_information: bool = False,
        popularity: Optional[ZipfPopularity] = None,
    ) -> Dict[int, List[ReactionTimePoint]]:
        """Reaction-time curves: one list of points per server count."""
        if use_global_information and popularity is None:
            popularity = ZipfPopularity(alpha=1.5, seed=self.seed)
        curves: Dict[int, List[ReactionTimePoint]] = {}
        for servers in server_counts:
            points: List[ReactionTimePoint] = []
            for fraction in interference_fractions:
                if not 0.0 <= fraction <= 1.0:
                    raise ValueError("interference fractions must be in [0, 1]")
                arrivals, services, app_ids = self._job_trace(fraction, popularity)
                simulator = ProfilingQueueSimulator(
                    num_servers=servers,
                    use_global_information=use_global_information,
                    seed=self.seed,
                )
                outcome = simulator.simulate(arrivals, services, app_ids)
                points.append(
                    ReactionTimePoint(
                        interference_fraction=fraction,
                        num_servers=servers,
                        mean_reaction_minutes=outcome.mean_reaction_minutes,
                        unstable=outcome.unstable,
                        acceptable=outcome.acceptable(self.max_wait_minutes),
                        cache_hit_fraction=outcome.cache_hit_fraction,
                    )
                )
            curves[servers] = points
        return curves

    # ------------------------------------------------------------------
    def alpha_sweep(
        self,
        interference_fractions: Sequence[float],
        alphas: Sequence[float],
        num_servers: int = 4,
    ) -> Dict[float, List[ReactionTimePoint]]:
        """Figure 13(c)/14(c): popularity-tail sweep at a fixed server count.

        ``math.inf`` reproduces the "no global information" curve.
        """
        curves: Dict[float, List[ReactionTimePoint]] = {}
        for alpha in alphas:
            popularity = ZipfPopularity(alpha=alpha, seed=self.seed)
            use_global = not math.isinf(alpha)
            result = self.sweep(
                interference_fractions,
                [num_servers],
                use_global_information=use_global,
                popularity=popularity,
            )
            curves[alpha] = result[num_servers]
        return curves

    # ------------------------------------------------------------------
    def minimum_servers_for(
        self,
        interference_fraction: float,
        candidate_servers: Sequence[int],
        use_global_information: bool = False,
    ) -> Optional[int]:
        """Smallest server count that keeps the reaction time acceptable."""
        for servers in sorted(candidate_servers):
            curve = self.sweep(
                [interference_fraction], [servers], use_global_information
            )[servers]
            if curve[0].acceptable:
                return servers
        return None
