"""Application popularity models.

The paper models VM reoccurrence with a Zipf/Pareto-style distribution:
a few cloud tenants run their applications on a large number of VMs
(global information is plentiful), while a long tail of tenants runs a
handful of VMs each.  The tail index ``alpha`` spans the paper's sweep
from light-tailed (alpha = 1, global information very effective) to the
degenerate "no global information" case (alpha = infinity, every VM runs
a different application).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np


class ZipfPopularity:
    """Assigns each arriving VM to an application id.

    ``alpha`` follows the paper's Pareto-tail-index convention: *smaller*
    alpha means a heavier tail — a few tenants own an enormous number of
    VMs, so global information is reused very often — while large alpha
    approaches a uniform spread and ``alpha = math.inf`` is the
    degenerate "every VM runs a different workload" case.  Internally the
    rank-popularity exponent is ``1 / alpha`` (the rank-size exponent of a
    Pareto-distributed tenant-size distribution).
    """

    def __init__(
        self,
        alpha: float = 1.5,
        num_applications: int = 400,
        seed: Optional[int] = 0,
    ) -> None:
        if num_applications < 1:
            raise ValueError("num_applications must be positive")
        if alpha <= 0 and not math.isinf(alpha):
            raise ValueError("alpha must be positive (or math.inf)")
        self.alpha = alpha
        self.num_applications = num_applications
        self.seed = seed

    def probabilities(self) -> np.ndarray:
        """Per-application probabilities (rank 1 is the most popular)."""
        if math.isinf(self.alpha):
            # Degenerate case handled in assign(): every VM is unique.
            return np.full(self.num_applications, 1.0 / self.num_applications)
        ranks = np.arange(1, self.num_applications + 1, dtype=float)
        weights = ranks ** (-1.0 / self.alpha)
        return weights / weights.sum()

    def assign(self, count: int) -> List[str]:
        """Application ids for ``count`` arriving VMs.

        With ``alpha = math.inf`` every VM gets a unique application id
        (the "no global information" scenario).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if math.isinf(self.alpha):
            return [f"app-unique-{i}" for i in range(count)]
        rng = np.random.default_rng(self.seed)
        probs = self.probabilities()
        draws = rng.choice(self.num_applications, size=count, p=probs)
        return [f"app-{rank}" for rank in draws]

    def expected_share_of_top(self, k: int) -> float:
        """Expected fraction of VMs belonging to the top-k applications."""
        if math.isinf(self.alpha):
            return 0.0
        probs = self.probabilities()
        k = min(k, self.num_applications)
        return float(np.sum(probs[:k]))
