"""VM arrival processes.

Two arrival models from the paper's scalability study: a Poisson process
(exponential inter-arrival times) and a burstier lognormal inter-arrival
process, both normalised to a configurable number of new VMs per day.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

SECONDS_PER_DAY = 86_400.0


class ArrivalProcess(abc.ABC):
    """Generates VM arrival timestamps (seconds from the simulation start)."""

    def __init__(self, vms_per_day: float = 1000.0, seed: Optional[int] = 0) -> None:
        if vms_per_day <= 0:
            raise ValueError("vms_per_day must be positive")
        self.vms_per_day = vms_per_day
        self.seed = seed

    @property
    def mean_interarrival_seconds(self) -> float:
        return SECONDS_PER_DAY / self.vms_per_day

    @abc.abstractmethod
    def interarrival_times(self, count: int) -> np.ndarray:
        """Draw ``count`` inter-arrival gaps in seconds."""

    def arrival_times(self, count: int) -> np.ndarray:
        """Cumulative arrival timestamps for ``count`` VMs."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.empty(0)
        return np.cumsum(self.interarrival_times(count))

    def arrival_epochs(
        self, horizon_epochs: int, epoch_seconds: float = 1.0
    ) -> np.ndarray:
        """Epoch indices of every arrival inside ``[0, horizon_epochs)``.

        Draws inter-arrival gaps (in batches, from the process's seeded
        generator) until the cumulative time passes the horizon, then
        quantises the timestamps onto the epoch grid — the form the
        fleet lifecycle timelines consume.  Deterministic in the
        process seed; a non-decreasing ``int`` array is returned.
        """
        if horizon_epochs < 1:
            raise ValueError("horizon_epochs must be positive")
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        horizon_seconds = horizon_epochs * epoch_seconds
        expected = horizon_seconds / self.mean_interarrival_seconds
        count = max(16, int(expected * 1.5) + 8)
        times = self.arrival_times(count)
        while times.size and times[-1] < horizon_seconds:
            count *= 2
            times = self.arrival_times(count)
        epochs = np.floor(times / epoch_seconds).astype(int)
        return epochs[epochs < horizon_epochs]


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival times (a Poisson arrival process)."""

    def interarrival_times(self, count: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.exponential(self.mean_interarrival_seconds, size=count)


class LognormalArrivals(ArrivalProcess):
    """Lognormal inter-arrival times: burstier than Poisson at equal mean.

    ``sigma`` controls the burstiness; the underlying normal's mean is
    adjusted so the lognormal mean equals the target inter-arrival time.
    """

    def __init__(
        self,
        vms_per_day: float = 1000.0,
        sigma: float = 1.5,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(vms_per_day=vms_per_day, seed=seed)
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.sigma = sigma

    def interarrival_times(self, count: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        mu = np.log(self.mean_interarrival_seconds) - 0.5 * self.sigma ** 2
        return rng.lognormal(mean=mu, sigma=self.sigma, size=count)
