"""Profiling-server scalability simulation.

The paper sizes DeepDive's pool of dedicated profiling servers with a
queueing simulation: new VMs arrive (Poisson or lognormal inter-arrival
times, 1000 VMs/day), a fraction of them eventually undergo interference
and therefore require analyzer service, the service times are replayed
from the live experiments, and the reaction time (queueing delay plus
service) is reported as a function of the interference fraction, the
number of profiling servers, and — when global information is available
— the Zipf popularity of the applications (popular applications are
profiled once and the result reused).
"""

from repro.queueing.arrivals import (
    ArrivalProcess,
    PoissonArrivals,
    LognormalArrivals,
)
from repro.queueing.popularity import ZipfPopularity
from repro.queueing.profiler_queue import (
    ProfilingJob,
    ProfilingQueueSimulator,
    SimulationOutcome,
)
from repro.queueing.reaction import (
    ReactionTimeStudy,
    ReactionTimePoint,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "LognormalArrivals",
    "ZipfPopularity",
    "ProfilingJob",
    "ProfilingQueueSimulator",
    "SimulationOutcome",
    "ReactionTimeStudy",
    "ReactionTimePoint",
]
