"""Clustering machinery for the warning system.

The paper uses the expectation-maximisation clustering algorithm (as
implemented in Weka) to produce interference-free clusters in the
N-dimensional metric space, enhanced with pairwise constraints so
behaviours the analyzer has diagnosed as interference can never be
absorbed into an interference-free cluster.  The clustering also yields
the vector of per-metric classification thresholds MT that the warning
system uses to decide whether a new measurement matches a known-normal
behaviour.

sklearn is not available in this environment, so the Gaussian-mixture EM
is implemented from scratch on numpy.
"""

from repro.clustering.scaling import StandardScaler
from repro.clustering.em import GaussianMixtureEM, GaussianMixtureModel
from repro.clustering.constraints import (
    CannotLinkConstraints,
    ConstrainedGaussianMixtureEM,
)
from repro.clustering.thresholds import MetricThresholds, derive_thresholds

__all__ = [
    "StandardScaler",
    "GaussianMixtureEM",
    "GaussianMixtureModel",
    "CannotLinkConstraints",
    "ConstrainedGaussianMixtureEM",
    "MetricThresholds",
    "derive_thresholds",
]
