"""Per-dimension standardisation.

The warning-system metrics live on wildly different scales (a CPI of 2
versus 40 bus transactions per kilo-instruction versus a utilisation in
[0, 1]).  Clustering and distance computations standardise each
dimension to zero mean and unit variance first; the scaler is fitted on
the interference-free behaviours and reused for every later query, so a
shift caused by interference is *not* normalised away.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class StandardScaler:
    """Zero-mean / unit-variance scaler with degenerate-dimension care."""

    def __init__(self, min_std: float = 1e-8) -> None:
        self.min_std = min_std
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        """Fit the scaler on an ``(n, d)`` data matrix."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("fit expects a non-empty (n, d) matrix")
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        # Dimensions with (near-)zero variance would blow up the
        # transform; give them a unit scale instead so they contribute a
        # plain difference-from-mean.
        std = np.where(std < self.min_std, 1.0, std)
        self.std_ = std
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("scaler is not fitted")
        data = np.asarray(data, dtype=float)
        single = data.ndim == 1
        data = np.atleast_2d(data)
        out = (data - self.mean_) / self.std_
        return out[0] if single else out

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("scaler is not fitted")
        data = np.asarray(data, dtype=float)
        single = data.ndim == 1
        data = np.atleast_2d(data)
        out = data * self.std_ + self.mean_
        return out[0] if single else out
