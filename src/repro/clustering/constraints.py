"""Constrained (semi-supervised) clustering.

DeepDive enhances the EM clustering with a set of constraints: when the
analyzer has diagnosed a behaviour as interference, the algorithm is
prevented from assigning that behaviour to an interference-free cluster
(Section 4.1).  We implement this as *cannot-link-to-normal* exclusion
points: the constrained EM fits the mixture on the normal behaviours
only, and then verifies that no interference-labelled point sits inside
any component's acceptance region; if one does, the offending
component's variance is shrunk until the excluded point falls outside,
which tightens the metric thresholds exactly where normal and
interference behaviours would otherwise blur together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.clustering.em import GaussianMixtureEM, GaussianMixtureModel


@dataclass
class CannotLinkConstraints:
    """Points that must never be considered part of a normal cluster."""

    points: List[np.ndarray] = field(default_factory=list)

    def add(self, point: np.ndarray) -> None:
        point = np.asarray(point, dtype=float).ravel()
        self.points.append(point)

    def as_matrix(self, n_dims: int) -> np.ndarray:
        if not self.points:
            return np.empty((0, n_dims))
        return np.vstack(self.points)

    def __len__(self) -> int:
        return len(self.points)


class ConstrainedGaussianMixtureEM:
    """EM clustering of normal behaviours with interference exclusions.

    Parameters
    ----------
    acceptance_sigma:
        Mahalanobis radius (per component, diagonal covariance) inside
        which a point is considered to match the component.  Excluded
        (interference) points must end up outside this radius for every
        component.
    shrink_factor:
        Multiplicative variance shrink applied per iteration while an
        excluded point is still inside some component's acceptance region.
    max_shrink_iter:
        Safety bound on shrink iterations.
    """

    def __init__(
        self,
        n_components: Optional[int] = None,
        max_components: int = 6,
        acceptance_sigma: float = 3.0,
        shrink_factor: float = 0.7,
        max_shrink_iter: int = 60,
        seed: Optional[int] = 0,
    ) -> None:
        if acceptance_sigma <= 0:
            raise ValueError("acceptance_sigma must be positive")
        if not 0.0 < shrink_factor < 1.0:
            raise ValueError("shrink_factor must be in (0, 1)")
        self.acceptance_sigma = acceptance_sigma
        self.shrink_factor = shrink_factor
        self.max_shrink_iter = max_shrink_iter
        self._em = GaussianMixtureEM(
            n_components=n_components, max_components=max_components, seed=seed
        )

    def fit(
        self,
        normal_data: np.ndarray,
        constraints: Optional[CannotLinkConstraints] = None,
    ) -> GaussianMixtureModel:
        """Fit on interference-free data, honouring the exclusion constraints."""
        normal_data = np.atleast_2d(np.asarray(normal_data, dtype=float))
        model = self._em.fit(normal_data)
        if constraints is None or len(constraints) == 0:
            return model
        excluded = constraints.as_matrix(normal_data.shape[1])
        variances = model.variances.copy()
        for _ in range(self.max_shrink_iter):
            offending = self._offending_components(model.means, variances, excluded)
            if not offending:
                break
            for j in offending:
                variances[j] = variances[j] * self.shrink_factor
        return GaussianMixtureModel(
            weights=model.weights,
            means=model.means,
            variances=variances,
            log_likelihood=model.log_likelihood,
            n_iter=model.n_iter,
            converged=model.converged,
        )

    def _offending_components(
        self, means: np.ndarray, variances: np.ndarray, excluded: np.ndarray
    ) -> List[int]:
        """Components whose acceptance region still contains an excluded point."""
        offending: List[int] = []
        for j in range(means.shape[0]):
            diff = excluded - means[j]
            dist = np.sqrt(np.sum(diff * diff / variances[j], axis=1))
            if np.any(dist <= self.acceptance_sigma):
                offending.append(j)
        return offending
