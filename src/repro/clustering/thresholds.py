"""Automatic derivation of the metric-classification thresholds MT.

The warning system needs, for every metric dimension, a threshold that
separates benign statistical variation of a normal behaviour from the
deviation caused by interference.  The paper states that the clustering
algorithm sets these thresholds automatically while producing the
interference-free clusters.  We derive them from the fitted mixture: the
threshold for a dimension is a multiple of the largest per-cluster
standard deviation along that dimension (the widest spread any normal
behaviour exhibits), optionally tightened so that known interference
points fall outside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.em import GaussianMixtureModel


@dataclass
class MetricThresholds:
    """The per-metric classification threshold vector MT.

    ``thresholds[name]`` is the maximum absolute deviation (in raw metric
    units) from a normal-cluster mean along dimension ``name`` that is
    still considered a match for that cluster.
    """

    thresholds: Dict[str, float]
    #: The sigma multiplier used to derive the thresholds.
    sigma: float

    def as_array(self, dimensions: Sequence[str]) -> np.ndarray:
        return np.array([self.thresholds[d] for d in dimensions], dtype=float)

    def __getitem__(self, name: str) -> float:
        return self.thresholds[name]

    def __contains__(self, name: str) -> bool:
        return name in self.thresholds

    def scaled(self, factor: float) -> "MetricThresholds":
        """Return a copy with every threshold multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return MetricThresholds(
            thresholds={k: v * factor for k, v in self.thresholds.items()},
            sigma=self.sigma * factor,
        )

    def matches(
        self,
        candidate: Mapping[str, float],
        reference: Mapping[str, float],
    ) -> bool:
        """Whether ``candidate`` is within MT of ``reference`` on every dimension."""
        for name, limit in self.thresholds.items():
            if abs(candidate[name] - reference[name]) > limit:
                return False
        return True

    def violated_dimensions(
        self,
        candidate: Mapping[str, float],
        reference: Mapping[str, float],
    ) -> Tuple[str, ...]:
        """The dimensions on which ``candidate`` deviates beyond MT."""
        return tuple(
            name
            for name, limit in self.thresholds.items()
            if abs(candidate[name] - reference[name]) > limit
        )

    # ------------------------------------------------------------------
    # Batch evaluation (the vectorized epoch engine)
    # ------------------------------------------------------------------
    def violation_mask(
        self,
        candidates: np.ndarray,
        references: np.ndarray,
        dimensions: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Per-dimension MT violations for a whole batch at once.

        ``candidates`` and ``references`` are ``(n, d)`` matrices whose
        columns follow ``dimensions`` (default: this threshold vector's
        own dimension order).  Returns an ``(n, d)`` boolean mask; row
        ``i`` marks the dimensions on which ``candidates[i]`` deviates
        from ``references[i]`` beyond MT — element-wise identical to
        :meth:`violated_dimensions` per row.
        """
        dims = tuple(dimensions) if dimensions is not None else tuple(self.thresholds)
        limits = self.as_array(dims)
        candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
        references = np.atleast_2d(np.asarray(references, dtype=float))
        return np.abs(candidates - references) > limits


def derive_thresholds(
    model: GaussianMixtureModel,
    dimensions: Sequence[str],
    sigma: float = 3.0,
    floor_fraction: float = 0.02,
    floors: Optional[Mapping[str, float]] = None,
) -> MetricThresholds:
    """Derive MT from a fitted interference-free mixture.

    Parameters
    ----------
    model:
        The mixture fitted on normal behaviours (after constraint
        shrinking, if any).
    dimensions:
        Names of the metric dimensions, in the order of the model's columns.
    sigma:
        Threshold multiplier on the per-dimension standard deviation.
    floor_fraction:
        Minimum threshold expressed as a fraction of the dimension's mean
        magnitude, so near-constant dimensions do not produce a zero
        threshold that would fire on measurement noise.
    floors:
        Optional absolute per-dimension minimum thresholds.
    """
    if len(dimensions) != model.n_dimensions:
        raise ValueError(
            f"model has {model.n_dimensions} dimensions, got {len(dimensions)} names"
        )
    stds = np.sqrt(model.variances)  # (k, d)
    widest = stds.max(axis=0)
    mean_mag = np.abs(model.means).max(axis=0)
    thresholds: Dict[str, float] = {}
    for i, name in enumerate(dimensions):
        value = sigma * widest[i]
        value = max(value, floor_fraction * mean_mag[i])
        if floors and name in floors:
            value = max(value, floors[name])
        thresholds[name] = float(value)
    return MetricThresholds(thresholds=thresholds, sigma=sigma)
