"""Gaussian-mixture expectation-maximisation clustering.

A small, dependency-free GMM/EM implementation with diagonal
covariances, model selection over the number of components via the
Bayesian information criterion, and the responsibilities / per-cluster
statistics the warning system needs to derive metric thresholds.
Diagonal covariances are a deliberate choice: the paper's thresholds MT
are per-metric, which corresponds exactly to an axis-aligned notion of
cluster spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class GaussianMixtureModel:
    """A fitted diagonal-covariance Gaussian mixture."""

    weights: np.ndarray          # (k,)
    means: np.ndarray            # (k, d)
    variances: np.ndarray        # (k, d)
    log_likelihood: float
    n_iter: int
    converged: bool

    @property
    def n_components(self) -> int:
        return int(self.weights.shape[0])

    @property
    def n_dimensions(self) -> int:
        return int(self.means.shape[1])

    # ------------------------------------------------------------------
    def log_prob_per_component(self, data: np.ndarray) -> np.ndarray:
        """Log N(x | mu_k, Sigma_k) for every point and component: (n, k)."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        n, d = data.shape
        k = self.n_components
        out = np.empty((n, k))
        for j in range(k):
            var = self.variances[j]
            diff = data - self.means[j]
            out[:, j] = -0.5 * (
                np.sum(diff * diff / var, axis=1)
                + np.sum(np.log(2.0 * np.pi * var))
            )
        return out

    def responsibilities(self, data: np.ndarray) -> np.ndarray:
        """Posterior cluster membership probabilities, shape (n, k)."""
        log_prob = self.log_prob_per_component(data) + np.log(self.weights)
        log_norm = _logsumexp(log_prob, axis=1, keepdims=True)
        return np.exp(log_prob - log_norm)

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Hard cluster assignment for every point."""
        return np.argmax(self.responsibilities(data), axis=1)

    def score_samples(self, data: np.ndarray) -> np.ndarray:
        """Per-point log-likelihood under the mixture."""
        log_prob = self.log_prob_per_component(data) + np.log(self.weights)
        return _logsumexp(log_prob, axis=1)

    def mahalanobis(self, data: np.ndarray) -> np.ndarray:
        """Per-point diagonal Mahalanobis distance to the *closest* component."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        n = data.shape[0]
        dists = np.empty((n, self.n_components))
        for j in range(self.n_components):
            diff = data - self.means[j]
            dists[:, j] = np.sqrt(np.sum(diff * diff / self.variances[j], axis=1))
        return dists.min(axis=1)

    def bic(self, data: np.ndarray) -> float:
        """Bayesian information criterion on ``data`` (lower is better)."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        n, d = data.shape
        # weights (k-1) + means (k*d) + variances (k*d)
        n_params = (self.n_components - 1) + 2 * self.n_components * d
        total_ll = float(np.sum(self.score_samples(data)))
        return n_params * np.log(max(n, 1)) - 2.0 * total_ll


def _logsumexp(a: np.ndarray, axis: int, keepdims: bool = False) -> np.ndarray:
    m = np.max(a, axis=axis, keepdims=True)
    out = m + np.log(np.sum(np.exp(a - m), axis=axis, keepdims=True))
    if not keepdims:
        out = np.squeeze(out, axis=axis)
    return out


class GaussianMixtureEM:
    """EM fitter for diagonal-covariance Gaussian mixtures.

    Parameters
    ----------
    n_components:
        Number of mixture components, or ``None`` to select automatically
        with BIC over ``1..max_components``.
    max_components:
        Upper bound for automatic model selection.
    max_iter, tol:
        EM stopping criteria.
    reg_covar:
        Variance floor added to every dimension for numerical stability.
    seed:
        Seed for the k-means++-style initialisation.
    """

    def __init__(
        self,
        n_components: Optional[int] = None,
        max_components: int = 6,
        max_iter: int = 200,
        tol: float = 1e-5,
        reg_covar: float = 1e-6,
        seed: Optional[int] = 0,
    ) -> None:
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be positive")
        if max_components < 1:
            raise ValueError("max_components must be positive")
        self.n_components = n_components
        self.max_components = max_components
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self.seed = seed

    # ------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> GaussianMixtureModel:
        """Fit the mixture; selects the component count with BIC when unset."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        n = data.shape[0]
        if n == 0:
            raise ValueError("cannot fit a mixture on an empty data set")
        if self.n_components is not None:
            return self._fit_k(data, min(self.n_components, n))

        best: Optional[GaussianMixtureModel] = None
        best_bic = np.inf
        for k in range(1, min(self.max_components, n) + 1):
            model = self._fit_k(data, k)
            bic = model.bic(data)
            if bic < best_bic - 1e-9:
                best, best_bic = model, bic
        assert best is not None
        return best

    # ------------------------------------------------------------------
    def _fit_k(self, data: np.ndarray, k: int) -> GaussianMixtureModel:
        n, d = data.shape
        rng = np.random.default_rng(self.seed)
        means = self._init_means(data, k, rng)
        global_var = data.var(axis=0) + self.reg_covar
        variances = np.tile(global_var, (k, 1))
        weights = np.full(k, 1.0 / k)

        model = GaussianMixtureModel(
            weights=weights,
            means=means,
            variances=variances,
            log_likelihood=-np.inf,
            n_iter=0,
            converged=False,
        )
        prev_ll = -np.inf
        for iteration in range(1, self.max_iter + 1):
            resp = model.responsibilities(data)
            weights, means, variances = self._m_step(data, resp)
            ll = float(
                np.mean(
                    _logsumexp(
                        GaussianMixtureModel(
                            weights, means, variances, 0.0, 0, False
                        ).log_prob_per_component(data)
                        + np.log(weights),
                        axis=1,
                    )
                )
            )
            model = GaussianMixtureModel(
                weights=weights,
                means=means,
                variances=variances,
                log_likelihood=ll,
                n_iter=iteration,
                converged=abs(ll - prev_ll) < self.tol,
            )
            if model.converged:
                break
            prev_ll = ll
        return model

    def _m_step(
        self, data: np.ndarray, resp: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n, d = data.shape
        nk = resp.sum(axis=0) + 1e-12
        weights = nk / n
        means = (resp.T @ data) / nk[:, None]
        k = resp.shape[1]
        variances = np.empty((k, d))
        for j in range(k):
            diff = data - means[j]
            variances[j] = (resp[:, j][:, None] * diff * diff).sum(axis=0) / nk[j]
        variances += self.reg_covar
        return weights, means, variances

    def _init_means(
        self, data: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++-style seeding of the component means."""
        n = data.shape[0]
        first = int(rng.integers(0, n))
        means = [data[first]]
        for _ in range(1, k):
            dist_sq = np.min(
                [np.sum((data - m) ** 2, axis=1) for m in means], axis=0
            )
            total = dist_sq.sum()
            if total <= 0:
                idx = int(rng.integers(0, n))
            else:
                idx = int(rng.choice(n, p=dist_sq / total))
            means.append(data[idx])
        return np.vstack(means)
