"""Lazy columnar counter store: ring-buffered per-host telemetry.

The monitoring loop only ever consumes *windows* of recent counter
samples, yet the original epoch edge materialised one
:class:`~repro.metrics.counters.CounterSample` per VM per epoch just to
feed ``Host.counter_history`` — the last per-VM Python work in an
otherwise columnar pipeline.  This module removes it:

* :class:`HostCounterStore` holds one preallocated per-host **ring
  buffer** of shape ``(capacity, n_vms, len(COUNTER_NAMES))``.  A batch
  epoch ingests its raw counter block with a single array assignment —
  no sample objects, no per-VM dicts, no list appends.
* ``Host.counter_history`` stays available as a lazy mapping
  (:class:`CounterHistoryView` / :class:`LazyCounterHistory`) that
  materialises ``CounterSample`` objects only when a scalar path, a
  report or an example actually indexes it.
* Window consumers (``Cluster.counter_window_view``, the fleet
  executor's counter totals) read window slices straight from the ring.

Equivalence contract
--------------------
The lazy store is a pure optimisation of the eager per-VM history:

* Materialised samples are bit-identical to the eagerly constructed
  ones — the ring stores the exact float64 block values the eager path
  would have fed ``CounterSample(*row)``.
* History lengths replicate the eager path's **amortised trim** exactly
  (:func:`trimmed_length`): with ``history_limit = L`` a history grows
  to ``2 L`` entries and is cut back to the most recent ``L``, so the
  ring capacity is ``2 L`` rows and the logical length follows the same
  sawtooth.
* Scalar-substrate hosts never produce counter blocks; their histories
  live as plain per-VM sample lists inside the store, exactly as
  before (object identity included).

Mid-run placement changes (the grow/shrink path)
------------------------------------------------
The ring is sized to the VM set of the segment it serves, **not** to a
construction-time ``n_vms``: when VMs register after construction the
store resizes the ring in place instead of silently mis-sizing (or
paying a full flush).  A VM *appended* to the name tuple (an arrival,
or a migration target) grows the ring's VM axis — existing columns,
ring contents and ``trimmed_length`` phases are preserved, and the new
VM's history simply begins at the epoch it joined.  VMs *removed* from
the tuple (a departure or migration source) shrink the ring after
materialising just their own column into their retained sample list.
Only a reordering or a combined add+remove falls back to the full
flush-and-restart.  Lifecycle churn therefore keeps the single-array
ingest hot path; ``tests/metrics/test_counter_store.py`` pins the
grow/shrink semantics against the eager reference.

``tests/property/test_lazy_history_equivalence.py`` pins the contract
fleet-wide; ``tests/metrics/test_counter_store.py`` pins it at the
store level.

A store constructed with ``lazy=False`` keeps the ring (window reads
stay columnar) but *additionally* materialises every epoch's samples
eagerly — the reference implementation the equivalence tests and the
``fleet_epoch_edge`` benchmark compare against.

Lazy materialisation is uncached: indexing the same ring entry twice
constructs two (equal) ``CounterSample`` objects.  That is the right
trade for the batch monitoring engine, which reads windows columnar and
touches samples only for warned VMs — but a deployment that runs the
*scalar* DeepDive engine every epoch re-materialises each VM's
smoothing window per epoch, paying more than the eager path did.  Such
setups should pass ``history_mode="eager"`` (the scalar engine is the
reference/benchmark path, so this is not the fleet configuration).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.metrics.counters import COUNTER_NAMES, N_COUNTERS, CounterSample

#: Initial ring capacity (epochs) for stores without a history limit;
#: the buffer doubles when full, so appends stay amortised O(1).
_UNLIMITED_INITIAL_CAPACITY = 64


def trimmed_length(total: int, limit: Optional[int]) -> int:
    """History length after ``total`` appends under the amortised trim.

    The eager path appends one sample per epoch and, whenever a history
    exceeds ``2 * limit`` entries, cuts it back to the most recent
    ``limit`` — so the observable length follows a sawtooth between
    ``limit`` and ``2 * limit``.  This closed form replays that
    recurrence so the lazy store reports identical lengths without
    performing any per-epoch work.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if limit is None or total <= 2 * limit:
        return total
    return limit + (total - 2 * limit - 1) % (limit + 1)


def _is_subsequence(needle: Tuple[str, ...], haystack: Tuple[str, ...]) -> bool:
    """Whether ``needle`` is ``haystack`` with some elements removed
    (relative order preserved) — the shape of a pure VM departure."""
    it = iter(haystack)
    return all(name in it for name in needle)


def sample_row(sample: CounterSample) -> np.ndarray:
    """One sample's counters as a ``(len(COUNTER_NAMES),)`` float row."""
    return np.array(
        [getattr(sample, name) for name in COUNTER_NAMES], dtype=float
    )


class HostCounterStore:
    """Per-host counter telemetry: a columnar ring plus lazy histories.

    Parameters
    ----------
    history_limit:
        When set, per-VM histories follow the amortised trim to the last
        ``history_limit`` epochs (ring capacity ``2 * history_limit``
        rows — constant memory for arbitrarily long runs).  ``None``
        retains everything (the ring grows geometrically).
    lazy:
        ``True`` (default) materialises ``CounterSample`` objects only
        on access.  ``False`` is the eager reference mode: every
        ingested epoch is materialised into per-VM sample lists
        immediately (the pre-ring behaviour), while the ring is still
        maintained for columnar window reads.
    """

    def __init__(
        self, history_limit: Optional[int] = None, lazy: bool = True
    ) -> None:
        if history_limit is not None and history_limit < 1:
            raise ValueError("history_limit must be positive")
        self.history_limit = history_limit
        self.lazy = lazy
        #: Materialised per-VM samples: the whole history for VMs not in
        #: the live ring (scalar appends, flushed ring segments, eager
        #: mode); only the pre-ring tail for live lazy-ring VMs.
        self._prefix: Dict[str, List[CounterSample]] = {}
        # --- live ring segment (one per stable VM-name tuple) ---
        self._ring_names: Optional[Tuple[str, ...]] = None
        self._ring_index: Dict[str, int] = {}
        #: Logical history length per ring VM at the epoch it joined.
        self._ring_base: Dict[str, int] = {}
        #: Ring epoch (0-based within the segment) each VM joined at —
        #: 0 for founding members, ``_appended`` at join time for VMs
        #: added through the grow path.
        self._ring_start: Dict[str, int] = {}
        #: Largest join epoch among the current ring VMs (0 when every
        #: VM founded the segment); gates the columnar window fast path.
        self._ring_max_start = 0
        #: True when every ring VM joined at epoch 0 with no history
        #: (lets the window fast path validate a short window in O(1)).
        self._ring_all_new = False
        self._ring_data: Optional[np.ndarray] = None
        self._ring_eps: Optional[np.ndarray] = None
        #: Epochs ingested since the ring segment started (monotonic;
        #: the physical row of epoch ``j`` is ``j % capacity``).
        self._appended = 0

    # ------------------------------------------------------------------
    # Mapping facade
    # ------------------------------------------------------------------
    @property
    def histories(self) -> "CounterHistoryView":
        """Read-only mapping ``vm name -> lazy sample sequence``."""
        return CounterHistoryView(self)

    def ensure(self, name: str) -> None:
        """Register a VM (idempotent); histories survive re-placement."""
        self._prefix.setdefault(name, [])

    def __contains__(self, name: str) -> bool:
        return name in self._prefix

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def ingest(
        self, names: Tuple[str, ...], block: np.ndarray, epoch_seconds: float
    ) -> None:
        """Record one batch epoch: ``block[i]`` belongs to ``names[i]``.

        The hot path of the store — one array assignment into the ring
        (plus, in eager mode, the reference per-VM materialisation).
        A change in the VM-name tuple resizes the ring in place when the
        change is a pure append (VMs arriving) or a pure removal (VMs
        departing, order preserved); any other change flushes the
        previous ring segment into the per-VM sample lists first.
        """
        if names != self._ring_names:
            old = self._ring_names
            if old is None or self._appended == 0:
                self.flush()
                self._start_ring(names, int(block.shape[0]))
            elif len(names) > len(old) and names[: len(old)] == old:
                self._grow_vms(names)
            elif names and len(names) < len(old) and _is_subsequence(names, old):
                self._shrink_vms(names)
            else:
                self.flush()
                self._start_ring(names, int(block.shape[0]))
        data = self._ring_data
        cap = data.shape[0]
        if self._appended >= cap:
            if self.history_limit is None:
                data = self._grow()
                cap = data.shape[0]
        pos = self._appended % cap
        data[pos] = block
        self._ring_eps[pos] = epoch_seconds
        self._appended += 1
        if not self.lazy:
            for name, row in zip(names, block.tolist()):
                history = self._prefix[name]
                history.append(
                    CounterSample(*row, epoch_seconds=epoch_seconds)
                )
                self._trim(history)

    def append_samples(self, samples: Dict[str, CounterSample]) -> None:
        """Record one scalar epoch (already materialised samples).

        A scalar epoch would leave a gap in the ring, so any live ring
        segment is flushed first — the window fast path then falls back
        cleanly, exactly like the previous columnar record did.
        """
        self.flush()
        for name, sample in samples.items():
            self.ensure(name)
            history = self._prefix[name]
            history.append(sample)
            self._trim(history)

    def flush(self) -> None:
        """Materialise the live ring segment into the per-VM lists.

        Called on placement changes and scalar epochs; afterwards every
        VM's list holds exactly its logical (trimmed) history, so the
        lazy and eager representations coincide again.
        """
        names = self._ring_names
        if names is None:
            return
        if self.lazy and self._appended:
            for name in names:
                self._flush_vm(name)
        self._ring_names = None
        self._ring_index = {}
        self._ring_base = {}
        self._ring_start = {}
        self._ring_max_start = 0
        self._ring_all_new = False
        self._ring_data = None
        self._ring_eps = None
        self._appended = 0

    def _flush_vm(self, name: str) -> None:
        """Materialise one ring VM's live samples into its prefix list.

        After the call ``self._prefix[name]`` holds exactly the VM's
        logical (trimmed) history; the caller is responsible for taking
        the VM out of the ring bookkeeping.  Eager stores already keep
        the prefix lists current, so this is lazy-only work.
        """
        if not self.lazy:
            return
        a = self._appended
        data = self._ring_data
        eps = self._ring_eps
        cap = data.shape[0]
        length = self.length(name)
        live_ring = min(length, a - self._ring_start[name])
        live_prefix = length - live_ring
        prefix = self._prefix[name]
        kept = prefix[len(prefix) - live_prefix:] if live_prefix else []
        col = self._ring_index[name]
        for j in range(a - live_ring, a):
            pos = j % cap
            kept.append(
                CounterSample(
                    *data[pos, col].tolist(),
                    epoch_seconds=float(eps[pos]),
                )
            )
        self._prefix[name] = kept

    def _start_ring(self, names: Tuple[str, ...], n_vms: int) -> None:
        limit = self.history_limit
        capacity = 2 * limit if limit is not None else _UNLIMITED_INITIAL_CAPACITY
        self._ring_names = tuple(names)
        self._ring_index = {name: i for i, name in enumerate(names)}
        base: Dict[str, int] = {}
        for name in names:
            self.ensure(name)
            base[name] = len(self._prefix[name])
        self._ring_base = base
        self._ring_start = {name: 0 for name in names}
        self._ring_max_start = 0
        self._ring_all_new = all(value == 0 for value in base.values())
        self._ring_data = np.empty((capacity, n_vms, N_COUNTERS), dtype=float)
        self._ring_eps = np.empty(capacity, dtype=float)
        self._appended = 0

    def _grow_vms(self, names: Tuple[str, ...]) -> None:
        """Extend the ring's VM axis in place (``names`` appends VMs).

        The documented grow path for post-construction VM registration:
        existing columns (and therefore every resident VM's ring
        contents, ``trimmed_length`` phase and window reads) carry over
        untouched; the appended VMs' histories begin at the current
        epoch, recorded in ``_ring_start`` so lengths and window folds
        never read rows from before they joined.
        """
        old_data = self._ring_data
        capacity, n_old = old_data.shape[0], old_data.shape[1]
        data = np.empty((capacity, len(names), N_COUNTERS), dtype=float)
        data[:, :n_old] = old_data
        self._ring_data = data
        for name in names[n_old:]:
            self.ensure(name)
            self._ring_base[name] = len(self._prefix[name])
            self._ring_start[name] = self._appended
        self._ring_names = tuple(names)
        self._ring_index = {name: i for i, name in enumerate(names)}
        self._ring_max_start = max(self._ring_start.values())
        self._ring_all_new = all(
            self._ring_start[n] == 0 and self._ring_base[n] == 0 for n in names
        )

    def _shrink_vms(self, names: Tuple[str, ...]) -> None:
        """Drop departed VMs' columns in place (``names`` removes VMs).

        Each departed VM's own column is materialised into its retained
        sample list first (histories survive departure, as with a full
        flush), then the ring keeps serving the remaining VMs without
        interrupting the segment.
        """
        old = self._ring_names
        keep = set(names)
        for name in old:
            if name not in keep:
                self._flush_vm(name)
                del self._ring_base[name]
                del self._ring_start[name]
        cols = [self._ring_index[name] for name in names]
        self._ring_data = np.ascontiguousarray(self._ring_data[:, cols])
        self._ring_names = tuple(names)
        self._ring_index = {name: i for i, name in enumerate(names)}
        self._ring_max_start = max(self._ring_start.values())
        self._ring_all_new = all(
            self._ring_start[n] == 0 and self._ring_base[n] == 0 for n in names
        )

    def _grow(self) -> np.ndarray:
        """Double an unlimited ring's capacity (amortised O(1) ingest)."""
        old_data, old_eps = self._ring_data, self._ring_eps
        capacity = old_data.shape[0]
        data = np.empty(
            (2 * capacity, old_data.shape[1], N_COUNTERS), dtype=float
        )
        eps = np.empty(2 * capacity, dtype=float)
        data[:capacity] = old_data
        eps[:capacity] = old_eps
        self._ring_data = data
        self._ring_eps = eps
        return data

    def _trim(self, history: List[CounterSample]) -> None:
        """The eager path's amortised trim (no-op without a limit)."""
        limit = self.history_limit
        if limit is not None and len(history) > 2 * limit:
            del history[: len(history) - limit]

    # ------------------------------------------------------------------
    # Per-VM reads (lazy materialisation)
    # ------------------------------------------------------------------
    def _in_lazy_ring(self, name: str) -> bool:
        return (
            self.lazy
            and self._ring_names is not None
            and name in self._ring_index
        )

    def length(self, name: str) -> int:
        """Logical history length of ``name`` (eager-trim semantics)."""
        prefix = self._prefix.get(name)
        if prefix is None:
            raise KeyError(name)
        if self._in_lazy_ring(name):
            appended = self._appended - self._ring_start[name]
            return trimmed_length(
                self._ring_base[name] + appended, self.history_limit
            )
        return len(prefix)

    def sample_at(self, name: str, index: int) -> CounterSample:
        """Materialise entry ``index`` (0-based, already normalised)."""
        if not self._in_lazy_ring(name):
            return self._prefix[name][index]
        length = self.length(name)
        a = self._appended
        live_ring = min(length, a - self._ring_start[name])
        live_prefix = length - live_ring
        if index < live_prefix:
            prefix = self._prefix[name]
            return prefix[len(prefix) - live_prefix + index]
        j = (a - live_ring) + (index - live_prefix)
        pos = j % self._ring_data.shape[0]
        return CounterSample(
            *self._ring_data[pos, self._ring_index[name]].tolist(),
            epoch_seconds=float(self._ring_eps[pos]),
        )

    def latest_sample(self, name: str) -> Optional[CounterSample]:
        """Newest sample of ``name``, or None before its first epoch."""
        if name not in self._prefix:
            return None
        length = self.length(name)
        if length == 0:
            return None
        return self.sample_at(name, length - 1)

    # ------------------------------------------------------------------
    # Columnar window reads
    # ------------------------------------------------------------------
    def window_view(
        self, window: int, current_names: Tuple[str, ...], current_epoch: int
    ) -> Optional[Tuple[Tuple[str, ...], np.ndarray, np.ndarray]]:
        """``(names, latest, window_sum)`` blocks straight from the ring.

        Returns ``None`` when the ring cannot serve the window exactly
        as the per-sample assembly would — the VM set changed since the
        segment started in a way the grow/shrink path could not absorb,
        a ``history_limit`` shorter than the window trims the sample
        windows, or some VM is younger than the window (unless the
        segment covers the host's entire life).  The window sum is a
        left fold in epoch order, bit-identical to ``aggregate_samples``
        over the materialised samples.
        """
        if self._ring_names is None or self._ring_names != current_names:
            return None
        a = self._appended
        if a == 0:
            return None
        limit = self.history_limit
        if limit is not None and window > limit:
            return None
        if a - self._ring_max_start >= window:
            k = window
        elif a == current_epoch and self._ring_all_new:
            # The segment (and every VM's history) covers the host's
            # entire life, so a short window is simply all of it.
            k = a
        else:
            return None
        data = self._ring_data
        cap = data.shape[0]
        first = a - k
        acc = data[first % cap]
        for j in range(first + 1, a):
            acc = acc + data[j % cap]
        latest = data[(a - 1) % cap]
        return self._ring_names, latest, acc

    def vm_window_fold(
        self, name: str, window: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(window_sum_row, latest_row)`` for one VM's last ``window``.

        The per-VM fallback of the columnar window view: rows come
        straight from the ring where the epochs live there, and from the
        materialised samples otherwise, left-folded in epoch order —
        bit-identical to aggregating the materialised sample window.
        Returns ``None`` for a VM with no recorded epochs.
        """
        length = self.length(name)
        if length == 0:
            return None
        k = min(window, length)
        start = length - k
        rows: List[np.ndarray] = []
        if self._in_lazy_ring(name):
            a = self._appended
            live_ring = min(length, a - self._ring_start[name])
            live_prefix = length - live_ring
            prefix = self._prefix[name]
            data = self._ring_data
            cap = data.shape[0]
            col = self._ring_index[name]
            for index in range(start, length):
                if index < live_prefix:
                    rows.append(
                        sample_row(prefix[len(prefix) - live_prefix + index])
                    )
                else:
                    j = (a - live_ring) + (index - live_prefix)
                    rows.append(data[j % cap, col])
        else:
            prefix = self._prefix[name]
            for sample in prefix[start:]:
                rows.append(sample_row(sample))
        acc = rows[0]
        for r in range(1, k):
            acc = acc + rows[r]
        return acc, rows[k - 1]

    def latest_block(self) -> Optional[np.ndarray]:
        """The newest ring epoch's ``(n_vms, N_COUNTERS)`` rows, or None.

        Serves fleet-level telemetry (per-shard counter totals) without
        touching per-VM state; None when no batch epoch is resident
        (scalar substrate, or a scalar epoch flushed the ring).
        """
        if self._ring_names is None or self._appended == 0:
            return None
        return self._ring_data[(self._appended - 1) % self._ring_data.shape[0]]


class CounterHistoryView(Mapping):
    """Read-only ``vm name -> history`` mapping over a store.

    Drop-in for the eager ``Dict[str, List[CounterSample]]``: iteration,
    membership, ``.get``/``.items``/``.values`` and equality all work;
    values are :class:`LazyCounterHistory` sequences.
    """

    __slots__ = ("_store",)

    def __init__(self, store: HostCounterStore) -> None:
        self._store = store

    def __getitem__(self, name: str) -> "LazyCounterHistory":
        if name not in self._store._prefix:
            raise KeyError(name)
        return LazyCounterHistory(self._store, name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._store._prefix)

    def __len__(self) -> int:
        return len(self._store._prefix)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CounterHistoryView({list(self._store._prefix)})"


class LazyCounterHistory(Sequence):
    """One VM's counter history, materialised on access.

    Supports everything the eager sample list supported — ``len``,
    indexing, slicing (returns a plain list), iteration, equality —
    but entries that live in the ring only become ``CounterSample``
    objects when actually indexed.
    """

    __slots__ = ("_store", "_name")

    def __init__(self, store: HostCounterStore, name: str) -> None:
        self._store = store
        self._name = name

    def __len__(self) -> int:
        return self._store.length(self._name)

    def __getitem__(self, index):
        length = len(self)
        if isinstance(index, slice):
            return [
                self._store.sample_at(self._name, i)
                for i in range(*index.indices(length))
            ]
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(
                f"history index {index} out of range for VM {self._name!r} "
                f"({length} epochs)"
            )
        return self._store.sample_at(self._name, index)

    def __eq__(self, other) -> bool:
        if isinstance(other, (LazyCounterHistory, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LazyCounterHistory({self._name!r}, {len(self)} epochs)"
