"""The batch epoch engine's core data structure.

A :class:`MetricMatrix` holds the normalised metric vectors of *many*
VMs for one monitoring epoch as a single ``(n, d)`` NumPy array (rows in
a fixed VM order, columns in the canonical
:data:`~repro.metrics.sample.WARNING_METRICS` order).  The warning
system's batch path operates directly on the array, so one epoch over N
VMs is a handful of array operations instead of N dict-driven loops.

Rows are bit-identical to what the scalar path
(:meth:`MetricVector.from_sample` / :func:`aggregate_samples`) produces
for the same samples; ``tests/property/test_vectorized_equivalence.py``
pins that property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.metrics.counters import CounterSample
from repro.metrics.normalization import (
    normalize_counter_matrix,
    samples_to_counter_matrix,
    windows_to_counter_matrix,
)
from repro.metrics.sample import WARNING_METRICS, MetricVector

#: Either one label for every row or a per-VM mapping.
Labels = Union[None, str, Mapping[str, str]]


def _resolve_labels(
    vm_names: Sequence[str], labels: Labels
) -> Tuple[Optional[str], ...]:
    if labels is None:
        return tuple(None for _ in vm_names)
    if isinstance(labels, str):
        return tuple(labels for _ in vm_names)
    return tuple(labels.get(name) for name in vm_names)


@dataclass
class MetricMatrix:
    """All VMs' normalised metric vectors for one epoch, as one array."""

    #: ``(n, len(WARNING_METRICS))`` normalised metric matrix.
    array: np.ndarray
    #: Row order: ``array[i]`` is the vector of ``vm_names[i]``.
    vm_names: Tuple[str, ...]
    #: Per-row application labels (``None`` when unknown).
    labels: Tuple[Optional[str], ...] = ()
    _index: Dict[str, int] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.array = np.atleast_2d(np.asarray(self.array, dtype=float))
        self.vm_names = tuple(self.vm_names)
        if not self.labels:
            self.labels = tuple(None for _ in self.vm_names)
        self.labels = tuple(self.labels)
        if self.array.shape[0] != len(self.vm_names):
            raise ValueError(
                f"matrix has {self.array.shape[0]} rows but {len(self.vm_names)} VM names"
            )
        if self.array.shape[1] != len(WARNING_METRICS):
            raise ValueError(
                f"matrix has {self.array.shape[1]} columns, expected "
                f"{len(WARNING_METRICS)} warning metrics"
            )
        if len(self.labels) != len(self.vm_names):
            raise ValueError("labels and vm_names must have equal length")
        self._index = {name: i for i, name in enumerate(self.vm_names)}
        if len(self._index) != len(self.vm_names):
            raise ValueError("vm_names must be unique")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "MetricMatrix":
        return cls(
            array=np.empty((0, len(WARNING_METRICS)), dtype=float),
            vm_names=(),
        )

    @classmethod
    def from_samples(
        cls,
        samples: Mapping[str, CounterSample],
        labels: Labels = None,
    ) -> "MetricMatrix":
        """Batch-normalise one counter sample per VM."""
        vm_names = tuple(samples)
        if not vm_names:
            return cls.empty()
        raw = samples_to_counter_matrix([samples[name] for name in vm_names])
        return cls(
            array=normalize_counter_matrix(raw),
            vm_names=vm_names,
            labels=_resolve_labels(vm_names, labels),
        )

    @classmethod
    def from_windows(
        cls,
        windows: Mapping[str, Sequence[CounterSample]],
        labels: Labels = None,
    ) -> "MetricMatrix":
        """Batch-aggregate one smoothing window per VM, then normalise.

        Equivalent to ``MetricVector.from_sample(aggregate_samples(w))``
        per VM, in one pass.
        """
        vm_names = tuple(windows)
        if not vm_names:
            return cls.empty()
        raw = windows_to_counter_matrix(
            [windows[name] for name in vm_names], names=vm_names
        )
        return cls(
            array=normalize_counter_matrix(raw),
            vm_names=vm_names,
            labels=_resolve_labels(vm_names, labels),
        )

    @classmethod
    def from_vectors(
        cls, vectors: Mapping[str, MetricVector]
    ) -> "MetricMatrix":
        """Stack already-normalised metric vectors into a matrix."""
        vm_names = tuple(vectors)
        if not vm_names:
            return cls.empty()
        array = np.vstack([vectors[name].as_array() for name in vm_names])
        return cls(
            array=array,
            vm_names=vm_names,
            labels=tuple(vectors[name].label for name in vm_names),
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.vm_names)

    def __contains__(self, vm_name: str) -> bool:
        return vm_name in self._index

    @property
    def n_dimensions(self) -> int:
        return int(self.array.shape[1])

    def row(self, vm_name: str) -> np.ndarray:
        """The normalised metric vector of one VM as a NumPy row."""
        return self.array[self._index[vm_name]]

    def vector(self, vm_name: str) -> MetricVector:
        """Materialise one VM's row as a scalar-path :class:`MetricVector`."""
        i = self._index[vm_name]
        values = {name: float(v) for name, v in zip(WARNING_METRICS, self.array[i])}
        return MetricVector(values=values, label=self.labels[i])

    def to_vectors(self) -> Dict[str, MetricVector]:
        """Materialise every row (interop with the scalar code paths)."""
        return {name: self.vector(name) for name in self.vm_names}
