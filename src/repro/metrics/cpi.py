"""The I/O-augmented CPI stack (Section 4.2, "Identifying dominant sources").

The interference analyzer attributes performance degradation to a
culprit resource by breaking the time a VM spends per instruction into
stall components::

    T_overall = T_core + T_off_core + T_disk + T_net

``T_core`` is time spent executing instructions and hitting in private
caches, ``T_off_core`` is stall time due to memory-hierarchy accesses
past the private caches (shared cache + front-side bus / QPI + DRAM),
``T_disk`` and ``T_net`` are the I/O stall components derived from
system-level statistics.  The individual contribution of a resource to
the degradation is computed from the discrepancy between the production
and isolation values of its stall component::

    Factor_resource = (T_resource^prod - T_resource^iso) / T_overall^prod

The stall components are inferred from the Table 1 counters.  The exact
mapping is architecture dependent (the paper ports it from the FSB-based
Xeon X5472 to the QPI-based Core i7 in a few days); we encode that
dependency in :class:`CPIStackModel`, parameterised by an
:class:`~repro.hardware.specs.ArchitectureSpec`-compatible description of
the memory hierarchy latencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.metrics.counters import CounterSample


class Resource(str, enum.Enum):
    """Server resources the analyzer can blame for interference."""

    CORE = "core"
    CACHE = "cache"          # shared last-level cache (L2 on Xeon, L3 on i7)
    MEMORY_BUS = "memory_bus"  # front-side bus on Xeon, QPI/IMC on i7
    DISK = "disk"
    NETWORK = "network"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class StallBreakdown:
    """Per-instruction stall-cycle breakdown for one VM epoch.

    All values are *cycles per retired instruction*, so the components of
    the augmented CPI stack are directly comparable between production
    and isolation even when the two ran at different load levels.
    """

    core: float
    cache: float
    memory_bus: float
    disk: float
    network: float

    @property
    def overall(self) -> float:
        """The full augmented CPI (sum of all components)."""
        return self.core + self.cache + self.memory_bus + self.disk + self.network

    def as_dict(self) -> Dict[Resource, float]:
        return {
            Resource.CORE: self.core,
            Resource.CACHE: self.cache,
            Resource.MEMORY_BUS: self.memory_bus,
            Resource.DISK: self.disk,
            Resource.NETWORK: self.network,
        }

    def __getitem__(self, resource: Resource) -> float:
        return self.as_dict()[resource]


@dataclass
class CPIStack:
    """Production-vs-isolation comparison of two stall breakdowns."""

    production: StallBreakdown
    isolation: StallBreakdown
    #: Per-resource degradation factors, pre-computed by
    #: :meth:`CPIStackModel.compare` using the isolation run to calibrate
    #: the per-access memory cost (so memory-level parallelism and
    #: prefetching do not have to be modelled explicitly).  When absent,
    #: :meth:`factors` falls back to the plain breakdown difference.
    calibrated_factors: Optional[Dict[Resource, float]] = None

    def factors(self) -> Dict[Resource, float]:
        """Per-resource contribution factors to the degradation.

        ``Factor_resource = (T^prod - T^iso) / T_overall^prod``; negative
        factors (a resource got *cheaper* in production) are kept so the
        caller can see them but they never win the culprit vote.
        """
        if self.calibrated_factors is not None:
            return dict(self.calibrated_factors)
        overall = max(self.production.overall, 1e-12)
        prod = self.production.as_dict()
        iso = self.isolation.as_dict()
        return {r: (prod[r] - iso[r]) / overall for r in Resource}

    def culprit(self) -> Resource:
        """The resource with the largest positive degradation factor."""
        factors = self.factors()
        return max(factors, key=lambda r: factors[r])

    def ranked(self) -> list:
        """Resources sorted by decreasing degradation factor."""
        factors = self.factors()
        return sorted(Resource, key=lambda r: factors[r], reverse=True)


@dataclass
class CPIStackModel:
    """Architecture-specific mapping from Table 1 counters to stall components.

    Parameters
    ----------
    llc_hit_cycles:
        Average penalty (cycles) of an access that misses the private
        caches but hits the shared last-level cache.
    memory_cycles:
        Average penalty (cycles) of an access that misses the shared
        cache and goes over the memory interconnect (FSB + DRAM on the
        Xeon, QPI + IMC + DRAM on the i7).
    bus_transaction_cycles:
        Extra cycles attributed to each bus transaction beyond the plain
        memory access penalty; captures interconnect queueing visible via
        ``bus_req_out``.
    name:
        Human-readable architecture name ("xeon_x5472", "core_i7").
    """

    llc_hit_cycles: float = 14.0
    memory_cycles: float = 250.0
    bus_transaction_cycles: float = 2.0
    name: str = "xeon_x5472"

    def breakdown(self, sample: CounterSample) -> StallBreakdown:
        """Compute the augmented CPI stack for one counter sample.

        The split between the ``cache`` and ``memory_bus`` components
        mirrors the paper's "L2 miss" versus "FSB" distinction: the cache
        component charges every off-core access its *uncontended* cost
        (so it grows when interference causes more shared-cache misses,
        Scenario A), while the memory-bus component absorbs the observed
        off-core stall cycles beyond that uncontended cost (so it grows
        when the interconnect itself is congested and each access takes
        longer, Scenario B).
        """
        inst = max(sample.inst_retired, 1.0)

        # Accesses that left the private caches: l1d_repl approximates
        # private-cache misses, of which l2_lines_in missed the shared
        # cache as well and went to memory.
        llc_hits = max(sample.l1d_repl - sample.l2_lines_in, 0.0)
        uncontended_cpi = (
            llc_hits * self.llc_hit_cycles + sample.l2_lines_in * self.memory_cycles
        ) / inst
        cache_cpi = uncontended_cpi

        # Observed off-core stalls (includes any interconnect queueing).
        observed_off_core_cpi = sample.resource_stalls / inst
        bus_queue_cpi = max(0.0, observed_off_core_cpi - uncontended_cpi)
        # bus_req_out (outstanding-request duration) corroborates the
        # queueing signal; blend it in so the component is not entirely
        # dependent on the resource_stalls accounting.
        bus_req_cpi = sample.bus_req_out * self.bus_transaction_cycles / inst
        memory_bus_cpi = 0.5 * bus_queue_cpi + 0.5 * max(
            0.0, bus_req_cpi - sample.l2_lines_in * self.memory_cycles * 0.5 / inst
        )

        # Core component: everything in the unhalted cycles that is not
        # attributable to the off-core memory hierarchy (floored at a
        # small positive base CPI so noisy samples cannot go negative).
        total_cpi = sample.cpu_unhalted / inst
        core_cpi = max(total_cpi - cache_cpi - memory_bus_cpi, 0.05)

        disk_cpi = sample.disk_stall_cycles / inst
        net_cpi = sample.net_stall_cycles / inst

        return StallBreakdown(
            core=core_cpi,
            cache=cache_cpi,
            memory_bus=memory_bus_cpi,
            disk=disk_cpi,
            network=net_cpi,
        )

    def compare(
        self, production: CounterSample, isolation: CounterSample
    ) -> CPIStack:
        """Build the production-vs-isolation CPI stack comparison.

        The per-resource degradation factors are computed with the
        isolation run as the calibration point: the isolation sample
        tells us what one off-core access effectively costs this workload
        (implicitly including its memory-level parallelism and
        prefetching), and the production sample is decomposed into

        * more off-core accesses at that calibrated cost  -> shared cache,
        * a higher cost per access beyond the calibrated cost -> memory
          interconnect,
        * extra disk / network stall cycles -> disk / network,
        * whatever remains of the CPI change -> core.
        """
        prod_bd = self.breakdown(production)
        iso_bd = self.breakdown(isolation)

        inst_p = max(production.inst_retired, 1.0)
        inst_i = max(isolation.inst_retired, 1.0)

        # Observed off-core stall cycles per instruction.
        off_core_p = production.resource_stalls / inst_p
        off_core_i = isolation.resource_stalls / inst_i

        # Off-core accesses per instruction (private-cache misses).
        accesses_p = production.l1d_repl / inst_p
        accesses_i = isolation.l1d_repl / inst_i

        # Calibrated cost of one off-core access in isolation.
        cost_per_access_i = off_core_i / max(accesses_i, 1e-9)

        cache_delta = (accesses_p - accesses_i) * cost_per_access_i
        bus_delta = (off_core_p - off_core_i) - cache_delta

        disk_delta = (
            production.disk_stall_cycles / inst_p
            - isolation.disk_stall_cycles / inst_i
        )
        net_delta = (
            production.net_stall_cycles / inst_p
            - isolation.net_stall_cycles / inst_i
        )
        cpi_p = production.cpu_unhalted / inst_p
        cpi_i = isolation.cpu_unhalted / inst_i
        cpi_delta = cpi_p - cpi_i
        core_delta = cpi_delta - (off_core_p - off_core_i)

        overall_p = cpi_p + (
            production.disk_stall_cycles + production.net_stall_cycles
        ) / inst_p
        overall_p = max(overall_p, 1e-9)
        factors = {
            Resource.CORE: core_delta / overall_p,
            Resource.CACHE: cache_delta / overall_p,
            Resource.MEMORY_BUS: bus_delta / overall_p,
            Resource.DISK: disk_delta / overall_p,
            Resource.NETWORK: net_delta / overall_p,
        }
        return CPIStack(
            production=prod_bd,
            isolation=iso_bd,
            calibrated_factors=factors,
        )

    @classmethod
    def for_architecture(cls, name: str) -> "CPIStackModel":
        """Return the model calibrated for a named architecture.

        Two architectures are provided, matching the paper: the
        FSB-based Xeon X5472 testbed and the QPI-based Core-i7 port
        described in Section 4.4.
        """
        presets: Mapping[str, Dict[str, float]] = {
            "xeon_x5472": {
                "llc_hit_cycles": 14.0,
                "memory_cycles": 250.0,
                "bus_transaction_cycles": 2.0,
            },
            "core_i7": {
                "llc_hit_cycles": 38.0,
                "memory_cycles": 180.0,
                "bus_transaction_cycles": 1.0,
            },
        }
        if name not in presets:
            raise KeyError(
                f"unknown architecture {name!r}; known: {sorted(presets)}"
            )
        return cls(name=name, **presets[name])


def degradation_from_instructions(
    production: CounterSample,
    isolation: CounterSample,
    epoch_normalized: bool = True,
) -> float:
    """Estimate degradation as 1 - Inst_production / Inst_isolation.

    The paper defines ``Degradation = Inst_production / Inst_isolation``
    as the ratio of instruction-retirement rates in production and in the
    sandbox; we report the more intuitive *loss* (``1 - ratio``) so 0
    means "no degradation" and 0.3 means "30% slower".  Rates are
    normalised by epoch length when ``epoch_normalized`` is true, so
    production and sandbox epochs of different lengths compare correctly.
    """
    prod_rate = production.inst_retired
    iso_rate = isolation.inst_retired
    if epoch_normalized:
        prod_rate /= max(production.epoch_seconds, 1e-12)
        iso_rate /= max(isolation.epoch_seconds, 1e-12)
    if iso_rate <= 0:
        return 0.0
    ratio = prod_rate / iso_rate
    return max(0.0, 1.0 - ratio)
