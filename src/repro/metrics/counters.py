"""Hardware-performance-counter and system-statistic definitions (Table 1).

The paper's warning system and analyzer consume a small set of low-level
metrics: hardware performance counters read through the PMU, plus two
system-level statistics (``iostat``-style disk-wait cycles and
``netstat``-style network-wait cycles) obtained from the hypervisor via
VM introspection.  This module defines that counter set and the
:class:`CounterSample` record that the (simulated) hypervisor emits for
each VM at the end of every monitoring epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterator, Mapping, Tuple


@dataclass(frozen=True)
class CounterDefinition:
    """Description of a single low-level metric.

    Attributes
    ----------
    name:
        The counter name used throughout the code base (matches Table 1).
    description:
        Human-readable description, taken from the paper.
    source:
        ``"pmu"`` for hardware performance counters, ``"system"`` for the
        iostat/netstat-derived statistics.
    """

    name: str
    description: str
    source: str = "pmu"


#: Table 1 of the paper: the low-level metrics used to differentiate
#: normal VM behaviours from interference.
COUNTER_DEFINITIONS: Tuple[CounterDefinition, ...] = (
    CounterDefinition("cpu_unhalted", "Clock cycles when not halted"),
    CounterDefinition("inst_retired", "Number of instructions retired"),
    CounterDefinition("l1d_repl", "Cache lines allocated in the L1 data cache"),
    CounterDefinition("l2_ifetch", "L2 cacheable instruction fetches"),
    CounterDefinition("l2_lines_in", "Number of allocated lines in L2"),
    CounterDefinition("mem_load", "Retired loads"),
    CounterDefinition("resource_stalls", "Cycles during which resource stalls occur"),
    CounterDefinition("bus_tran_any", "Number of completed bus transactions"),
    CounterDefinition("bus_trans_ifetch", "Number of instruction fetch transactions"),
    CounterDefinition("bus_tran_brd", "Burst read bus transactions"),
    CounterDefinition(
        "bus_req_out", "Outstanding cacheable data read bus requests duration"
    ),
    CounterDefinition("br_miss_pred", "Number of mispredicted branches retired"),
    CounterDefinition(
        "disk_stall_cycles",
        "Idle CPU cycles while the system had an outstanding disk I/O request "
        "(iostat, T_disk)",
        source="system",
    ),
    CounterDefinition(
        "net_stall_cycles",
        "Idle CPU cycles while the system had a packet in the Snd/Rcv queue "
        "(netstat, T_net)",
        source="system",
    ),
)

#: All counter names, in the canonical (Table 1) order.
COUNTER_NAMES: Tuple[str, ...] = tuple(d.name for d in COUNTER_DEFINITIONS)

#: Number of Table-1 counters — the column count of every raw counter
#: matrix (batch epoch results, telemetry-ring rows).
N_COUNTERS: int = len(COUNTER_NAMES)

#: Counters obtained from the PMU.
CORE_COUNTERS: Tuple[str, ...] = tuple(
    d.name for d in COUNTER_DEFINITIONS if d.source == "pmu"
)

#: Counters obtained from system-level statistics (iostat / netstat).
IO_COUNTERS: Tuple[str, ...] = tuple(
    d.name for d in COUNTER_DEFINITIONS if d.source == "system"
)


@dataclass
class CounterSample:
    """Raw counter values collected for one VM over one monitoring epoch.

    Values are event *counts* (or cycle counts) accumulated over the
    epoch, exactly what a PMU read-and-reset at each epoch boundary would
    yield.  The sample also carries the epoch length so rates can be
    recovered, but the warning system never uses wall-clock rates: it
    normalises everything by ``inst_retired`` (see
    :mod:`repro.metrics.normalization`).

    .. warning::
       The counter fields are declared in :data:`COUNTER_NAMES` (Table 1)
       order **and must stay that way**: the columnar pipeline
       materialises samples positionally — ``CounterSample(*row)`` with
       ``row`` a raw counter-matrix row — in
       :meth:`repro.hardware.batch.BatchEpochResult.sample` and the lazy
       :class:`repro.metrics.store.HostCounterStore`.  Reordering a field
       would silently scramble every counter; the coupling is pinned by
       ``tests/metrics/test_counter_store.py``.
    """

    cpu_unhalted: float = 0.0
    inst_retired: float = 0.0
    l1d_repl: float = 0.0
    l2_ifetch: float = 0.0
    l2_lines_in: float = 0.0
    mem_load: float = 0.0
    resource_stalls: float = 0.0
    bus_tran_any: float = 0.0
    bus_trans_ifetch: float = 0.0
    bus_tran_brd: float = 0.0
    bus_req_out: float = 0.0
    br_miss_pred: float = 0.0
    disk_stall_cycles: float = 0.0
    net_stall_cycles: float = 0.0
    #: Epoch length in seconds over which the counters were accumulated.
    epoch_seconds: float = 1.0

    def as_dict(self) -> Dict[str, float]:
        """Return the counter values as a plain dictionary (no epoch length)."""
        return {name: getattr(self, name) for name in COUNTER_NAMES}

    def __getitem__(self, name: str) -> float:
        if name not in COUNTER_NAMES:
            raise KeyError(name)
        return getattr(self, name)

    def __iter__(self) -> Iterator[str]:
        return iter(COUNTER_NAMES)

    @property
    def cpi(self) -> float:
        """Cycles per retired instruction for this epoch."""
        if self.inst_retired <= 0:
            return float("inf")
        return self.cpu_unhalted / self.inst_retired

    @property
    def ipc(self) -> float:
        """Instructions retired per unhalted cycle."""
        if self.cpu_unhalted <= 0:
            return 0.0
        return self.inst_retired / self.cpu_unhalted

    def scaled(self, factor: float) -> "CounterSample":
        """Return a copy with every counter multiplied by ``factor``.

        Used by the hypervisor when attributing a fraction of a shared
        resource's events to a particular VM.
        """
        values = {name: getattr(self, name) * factor for name in COUNTER_NAMES}
        return CounterSample(epoch_seconds=self.epoch_seconds, **values)

    def merged(self, other: "CounterSample") -> "CounterSample":
        """Return the element-wise sum of two samples.

        The epoch length of the merged sample is the sum of the two, so
        aggregating consecutive epochs keeps rates meaningful.
        """
        values = {
            name: getattr(self, name) + getattr(other, name) for name in COUNTER_NAMES
        }
        return CounterSample(
            epoch_seconds=self.epoch_seconds + other.epoch_seconds, **values
        )

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, float], epoch_seconds: float = 1.0
    ) -> "CounterSample":
        """Build a sample from a name->value mapping; missing names are 0."""
        unknown = set(mapping) - set(COUNTER_NAMES)
        if unknown:
            raise KeyError(f"unknown counter names: {sorted(unknown)}")
        values = {name: float(mapping.get(name, 0.0)) for name in COUNTER_NAMES}
        return cls(epoch_seconds=epoch_seconds, **values)

    @classmethod
    def zeros(cls, epoch_seconds: float = 1.0) -> "CounterSample":
        """Return an all-zero sample (an idle VM epoch)."""
        return cls(epoch_seconds=epoch_seconds)

    def validate(self) -> None:
        """Raise :class:`ValueError` if any counter is negative or NaN."""
        for f in fields(self):
            value = getattr(self, f.name)
            if value != value:  # NaN check
                raise ValueError(f"counter {f.name} is NaN")
            if value < 0:
                raise ValueError(f"counter {f.name} is negative: {value}")
