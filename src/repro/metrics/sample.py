"""Normalised metric vectors.

The warning system does not operate on raw counters: raw counts scale
with the amount of work performed, so load-intensity changes would look
like behaviour changes.  The paper normalises every counter by the
number of instructions retired and finds that the normalised values are
persistent across a wide range of load intensities (Section 4.1).

:class:`MetricVector` is the normalised representation used everywhere
above the hypervisor: the warning system clusters them, the behaviour
repository stores them, and the synthetic benchmark is trained to
reproduce them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.counters import CounterSample

#: The dimensions of the warning-system space.  Every entry is "events
#: per 1000 retired instructions" except ``cpi`` (cycles per instruction)
#: and ``cpu_utilization`` (fraction of the epoch the vCPUs were active).
WARNING_METRICS: Tuple[str, ...] = (
    "cpi",
    "l1_repl_pki",
    "l2_ifetch_pki",
    "l2_lines_in_pki",
    "mem_load_pki",
    "resource_stall_cpi",
    "bus_tran_pki",
    "bus_ifetch_pki",
    "bus_brd_pki",
    "bus_req_out_pki",
    "br_miss_pki",
    "disk_stall_cpi",
    "net_stall_cpi",
    "cpu_utilization",
)


@dataclass
class MetricVector:
    """A point in the warning system's N-dimensional metric space.

    The vector is derived from a :class:`CounterSample` via
    :meth:`from_sample`.  Individual dimensions can be read by name
    (``vector["cpi"]``) or the whole vector can be obtained as a numpy
    array in the canonical :data:`WARNING_METRICS` order.
    """

    values: Dict[str, float]
    #: Optional identifier of the VM/application this vector describes.
    label: Optional[str] = None

    def __post_init__(self) -> None:
        missing = set(WARNING_METRICS) - set(self.values)
        if missing:
            raise ValueError(f"metric vector missing dimensions: {sorted(missing)}")

    @classmethod
    def from_sample(
        cls, sample: CounterSample, label: Optional[str] = None
    ) -> "MetricVector":
        """Normalise a raw counter sample into a metric vector.

        Counters are expressed per 1000 retired instructions ("pki"),
        stall-cycle counters are expressed as stall cycles per
        instruction (so they add up with the CPI), and CPU utilisation is
        unhalted cycles over the epoch's total cycles (approximated from
        the epoch length assuming the nominal frequency is encoded in the
        sample by the hypervisor; utilisation is only used as a coarse
        activity signal).
        """
        inst = max(sample.inst_retired, 1.0)
        pki = 1000.0 / inst
        # Total cycles in the epoch are approximated as the unhalted plus
        # stall-idle cycles; utilisation saturates at 1.
        total_cycles = max(
            sample.cpu_unhalted + sample.disk_stall_cycles + sample.net_stall_cycles,
            1.0,
        )
        values = {
            "cpi": sample.cpu_unhalted / inst,
            "l1_repl_pki": sample.l1d_repl * pki,
            "l2_ifetch_pki": sample.l2_ifetch * pki,
            "l2_lines_in_pki": sample.l2_lines_in * pki,
            "mem_load_pki": sample.mem_load * pki,
            "resource_stall_cpi": sample.resource_stalls / inst,
            "bus_tran_pki": sample.bus_tran_any * pki,
            "bus_ifetch_pki": sample.bus_trans_ifetch * pki,
            "bus_brd_pki": sample.bus_tran_brd * pki,
            "bus_req_out_pki": sample.bus_req_out * pki,
            "br_miss_pki": sample.br_miss_pred * pki,
            "disk_stall_cpi": sample.disk_stall_cycles / inst,
            "net_stall_cpi": sample.net_stall_cycles / inst,
            "cpu_utilization": min(1.0, sample.cpu_unhalted / total_cycles),
        }
        return cls(values=values, label=label)

    def as_array(
        self, dimensions: Optional[Sequence[str]] = None
    ) -> np.ndarray:
        """Return the vector as a numpy array in ``dimensions`` order."""
        dims = tuple(dimensions) if dimensions is not None else WARNING_METRICS
        return np.array([self.values[d] for d in dims], dtype=float)

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def distance(
        self,
        other: "MetricVector",
        scale: Optional[Mapping[str, float]] = None,
    ) -> float:
        """Scaled Euclidean distance to ``other``.

        ``scale`` maps dimension name to a positive divisor (typically a
        per-dimension standard deviation); unscaled dimensions use 1.
        """
        total = 0.0
        for name in WARNING_METRICS:
            s = 1.0
            if scale is not None:
                s = max(float(scale.get(name, 1.0)), 1e-12)
            d = (self.values[name] - other.values[name]) / s
            total += d * d
        return float(np.sqrt(total))

    def copy(self) -> "MetricVector":
        return MetricVector(values=dict(self.values), label=self.label)


def vectors_to_matrix(
    vectors: Iterable[MetricVector],
    dimensions: Optional[Sequence[str]] = None,
) -> np.ndarray:
    """Stack metric vectors into an ``(n, d)`` matrix."""
    rows: List[np.ndarray] = [v.as_array(dimensions) for v in vectors]
    if not rows:
        dims = dimensions if dimensions is not None else WARNING_METRICS
        return np.empty((0, len(tuple(dims))), dtype=float)
    return np.vstack(rows)


def matrix_to_vectors(
    matrix: np.ndarray,
    dimensions: Optional[Sequence[str]] = None,
    label: Optional[str] = None,
) -> List[MetricVector]:
    """Inverse of :func:`vectors_to_matrix` (missing dims become 0)."""
    dims = tuple(dimensions) if dimensions is not None else WARNING_METRICS
    out: List[MetricVector] = []
    for row in np.atleast_2d(matrix):
        values = {name: 0.0 for name in WARNING_METRICS}
        for name, value in zip(dims, row):
            values[name] = float(value)
        out.append(MetricVector(values=values, label=label))
    return out
