"""Low-level metric layer.

This package defines the counter set from Table 1 of the paper, the raw
per-epoch counter samples produced by the hypervisor, the normalised
metric vectors the warning system clusters, and the I/O-augmented CPI
stack used by the interference analyzer to attribute degradation to a
culprit resource.
"""

from repro.metrics.counters import (
    COUNTER_NAMES,
    CORE_COUNTERS,
    IO_COUNTERS,
    CounterSample,
    CounterDefinition,
    COUNTER_DEFINITIONS,
)
from repro.metrics.sample import MetricVector, WARNING_METRICS
from repro.metrics.normalization import normalize_sample, normalize_samples
from repro.metrics.cpi import (
    CPIStack,
    CPIStackModel,
    Resource,
    StallBreakdown,
)

__all__ = [
    "COUNTER_NAMES",
    "CORE_COUNTERS",
    "IO_COUNTERS",
    "CounterSample",
    "CounterDefinition",
    "COUNTER_DEFINITIONS",
    "MetricVector",
    "WARNING_METRICS",
    "normalize_sample",
    "normalize_samples",
    "CPIStack",
    "CPIStackModel",
    "Resource",
    "StallBreakdown",
]
