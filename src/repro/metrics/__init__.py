"""Low-level metric layer.

This package defines the counter set from Table 1 of the paper, the raw
per-epoch counter samples produced by the hypervisor, the normalised
metric vectors the warning system clusters, and the I/O-augmented CPI
stack used by the interference analyzer to attribute degradation to a
culprit resource.
"""

from repro.metrics.counters import (
    COUNTER_NAMES,
    CORE_COUNTERS,
    IO_COUNTERS,
    CounterSample,
    CounterDefinition,
    COUNTER_DEFINITIONS,
)
from repro.metrics.sample import MetricVector, WARNING_METRICS
from repro.metrics.matrix import MetricMatrix
from repro.metrics.normalization import (
    aggregate_samples,
    normalize_counter_matrix,
    normalize_sample,
    normalize_samples,
    samples_to_counter_matrix,
    windows_to_counter_matrix,
)
from repro.metrics.cpi import (
    CPIStack,
    CPIStackModel,
    Resource,
    StallBreakdown,
)
from repro.metrics.store import (
    CounterHistoryView,
    HostCounterStore,
    LazyCounterHistory,
    trimmed_length,
)

__all__ = [
    "COUNTER_NAMES",
    "CORE_COUNTERS",
    "IO_COUNTERS",
    "CounterSample",
    "CounterDefinition",
    "COUNTER_DEFINITIONS",
    "MetricVector",
    "MetricMatrix",
    "WARNING_METRICS",
    "aggregate_samples",
    "normalize_counter_matrix",
    "normalize_sample",
    "normalize_samples",
    "samples_to_counter_matrix",
    "windows_to_counter_matrix",
    "CPIStack",
    "CPIStackModel",
    "Resource",
    "StallBreakdown",
    "CounterHistoryView",
    "HostCounterStore",
    "LazyCounterHistory",
    "trimmed_length",
]
