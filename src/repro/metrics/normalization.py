"""Helpers to turn raw counter samples into normalised metric vectors.

Kept as free functions so the hypervisor, warning system and experiment
drivers all normalise identically (Section 4.1: "we normalize the
metrics with respect to the amount of work performed").
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.metrics.counters import CounterSample
from repro.metrics.sample import MetricVector


def normalize_sample(
    sample: CounterSample, label: Optional[str] = None
) -> MetricVector:
    """Normalise a single counter sample by its instructions retired."""
    return MetricVector.from_sample(sample, label=label)


def normalize_samples(
    samples: Iterable[CounterSample], label: Optional[str] = None
) -> List[MetricVector]:
    """Normalise an iterable of counter samples."""
    return [normalize_sample(s, label=label) for s in samples]


def aggregate_samples(samples: Iterable[CounterSample]) -> CounterSample:
    """Sum consecutive epoch samples into one longer-epoch sample.

    Useful when the warning system smooths over several monitoring
    epochs before comparing against the behaviour repository.
    """
    merged: Optional[CounterSample] = None
    for sample in samples:
        merged = sample if merged is None else merged.merged(sample)
    if merged is None:
        raise ValueError("cannot aggregate an empty sequence of samples")
    return merged
