"""Helpers to turn raw counter samples into normalised metric vectors.

Kept as free functions so the hypervisor, warning system and experiment
drivers all normalise identically (Section 4.1: "we normalize the
metrics with respect to the amount of work performed").

Two implementations coexist:

* the scalar path (:func:`normalize_sample` /
  :meth:`~repro.metrics.sample.MetricVector.from_sample`) used by the
  per-VM code paths and kept as the executable reference semantics;
* the batch path (:func:`samples_to_counter_matrix`,
  :func:`normalize_counter_matrix`, :func:`windows_to_counter_matrix`)
  that processes *all* VMs of an epoch as one NumPy array.  The batch
  math mirrors the scalar operations element-wise (same operations, same
  order), so the two paths produce bit-identical results — a property
  pinned by ``tests/property/test_vectorized_equivalence.py``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.metrics.counters import COUNTER_NAMES, CounterSample
from repro.metrics.sample import WARNING_METRICS, MetricVector


def normalize_sample(
    sample: CounterSample, label: Optional[str] = None
) -> MetricVector:
    """Normalise a single counter sample by its instructions retired."""
    return MetricVector.from_sample(sample, label=label)


def normalize_samples(
    samples: Iterable[CounterSample], label: Optional[str] = None
) -> List[MetricVector]:
    """Normalise an iterable of counter samples."""
    return [normalize_sample(s, label=label) for s in samples]


def aggregate_samples(
    samples: Iterable[CounterSample], context: Optional[str] = None
) -> CounterSample:
    """Sum consecutive epoch samples into one longer-epoch sample.

    Useful when the warning system smooths over several monitoring
    epochs before comparing against the behaviour repository.

    Parameters
    ----------
    samples:
        The per-epoch samples to merge; must contain at least one.
    context:
        Optional description of where the window came from (e.g. the VM
        whose history is being smoothed); included in the error message
        when the window is empty so the failure is diagnosable.

    Raises
    ------
    ValueError
        If ``samples`` is empty.  Counter histories only become empty
        through a caller bug (asking for a window before the first epoch
        or slicing with a non-positive length), so the error names the
        offending window instead of surfacing a cryptic downstream crash.
    """
    merged: Optional[CounterSample] = None
    for sample in samples:
        merged = sample if merged is None else merged.merged(sample)
    if merged is None:
        where = f" for {context}" if context else ""
        raise ValueError(
            f"aggregate_samples{where}: received an empty sequence of "
            "CounterSample objects; a smoothing/profiling window must "
            "contain at least one epoch sample"
        )
    return merged


# ----------------------------------------------------------------------
# Batch (vectorized) path
# ----------------------------------------------------------------------
def samples_to_counter_matrix(samples: Sequence[CounterSample]) -> np.ndarray:
    """Stack raw counter samples into an ``(n, len(COUNTER_NAMES))`` matrix.

    Columns follow the canonical Table-1 order (:data:`COUNTER_NAMES`).
    """
    samples = list(samples)
    out = np.empty((len(samples), len(COUNTER_NAMES)), dtype=float)
    for i, sample in enumerate(samples):
        for j, name in enumerate(COUNTER_NAMES):
            out[i, j] = getattr(sample, name)
    return out


def windows_to_counter_matrix(
    windows: Sequence[Sequence[CounterSample]],
    context: Optional[str] = None,
    names: Optional[Sequence[str]] = None,
) -> np.ndarray:
    """Aggregate one smoothing window per VM into one raw counter row each.

    Equivalent to calling :func:`aggregate_samples` on every window and
    stacking the results, but without materialising the intermediate
    :class:`CounterSample` objects.  The per-window summation is a left
    fold in window order — the exact operation sequence of
    :meth:`CounterSample.merged` — so the result is bit-identical to the
    scalar path.

    ``names`` optionally labels each window (typically the VM names) so
    an empty-window error can identify the offender; ``context``
    describes the batch as a whole.
    """
    n = len(windows)
    out = np.empty((n, len(COUNTER_NAMES)), dtype=float)
    for i, window in enumerate(windows):
        raw = samples_to_counter_matrix(window)
        if raw.shape[0] == 0:
            where = f" for {context}" if context else ""
            who = f" (VM {names[i]!r})" if names is not None else ""
            raise ValueError(
                f"windows_to_counter_matrix{where}: window {i}{who} is empty; "
                "every smoothing window must contain at least one epoch sample"
            )
        acc = raw[0]
        for r in range(1, raw.shape[0]):
            acc = acc + raw[r]
        out[i] = acc
    return out


def normalize_counter_matrix(raw: np.ndarray) -> np.ndarray:
    """Normalise an ``(n, len(COUNTER_NAMES))`` raw counter matrix.

    Returns an ``(n, len(WARNING_METRICS))`` matrix whose columns follow
    the canonical :data:`WARNING_METRICS` order.  Every arithmetic step
    mirrors :meth:`MetricVector.from_sample` (same operations in the
    same order on float64), so each row is bit-identical to the scalar
    normalisation of the corresponding sample.
    """
    raw = np.atleast_2d(np.asarray(raw, dtype=float))
    if raw.shape[1] != len(COUNTER_NAMES):
        raise ValueError(
            f"expected {len(COUNTER_NAMES)} counter columns, got {raw.shape[1]}"
        )
    col = {name: raw[:, j] for j, name in enumerate(COUNTER_NAMES)}
    inst = np.maximum(col["inst_retired"], 1.0)
    pki = 1000.0 / inst
    total_cycles = np.maximum(
        col["cpu_unhalted"] + col["disk_stall_cycles"] + col["net_stall_cycles"],
        1.0,
    )
    columns = {
        "cpi": col["cpu_unhalted"] / inst,
        "l1_repl_pki": col["l1d_repl"] * pki,
        "l2_ifetch_pki": col["l2_ifetch"] * pki,
        "l2_lines_in_pki": col["l2_lines_in"] * pki,
        "mem_load_pki": col["mem_load"] * pki,
        "resource_stall_cpi": col["resource_stalls"] / inst,
        "bus_tran_pki": col["bus_tran_any"] * pki,
        "bus_ifetch_pki": col["bus_trans_ifetch"] * pki,
        "bus_brd_pki": col["bus_tran_brd"] * pki,
        "bus_req_out_pki": col["bus_req_out"] * pki,
        "br_miss_pki": col["br_miss_pred"] * pki,
        "disk_stall_cpi": col["disk_stall_cycles"] / inst,
        "net_stall_cpi": col["net_stall_cycles"] / inst,
        "cpu_utilization": np.minimum(1.0, col["cpu_unhalted"] / total_cycles),
    }
    return np.column_stack([columns[name] for name in WARNING_METRICS])
