"""Experiment drivers.

One module per figure of the paper's evaluation.  Every module exposes a
``run(...)`` function returning a small result dataclass with the same
rows/series the paper reports, plus the derived summary statistics the
reproduction is judged on (separability, detection rate, estimation
error, ...).  The benchmark harness under ``benchmarks/`` simply calls
these functions and asserts the qualitative shape.
"""

from repro.experiments import (
    fig01_motivation,
    fig04_clusters,
    fig05_global,
    fig06_breakdown,
    fig07_i7_port,
    fig08_detection,
    fig09_degradation,
    fig10_synthetic,
    fig11_placement,
    fig12_overhead,
    fig13_reaction_poisson,
    fig14_reaction_lognormal,
)

__all__ = [
    "fig01_motivation",
    "fig04_clusters",
    "fig05_global",
    "fig06_breakdown",
    "fig07_i7_port",
    "fig08_detection",
    "fig09_degradation",
    "fig10_synthetic",
    "fig11_placement",
    "fig12_overhead",
    "fig13_reaction_poisson",
    "fig14_reaction_lognormal",
]
