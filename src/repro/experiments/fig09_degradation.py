"""Figure 9 — the analyzer estimates performance degradation accurately.

The paper co-locates each cloud workload with its paired stressor
(memory-stress with Data Serving, network-stress with Data Analytics,
disk-stress with Web Search), sweeps the stressor's intensity so the
client-reported degradation spans roughly 5%-50%, and compares the
degradation estimated transparently from the instruction-retirement
rates against the degradation reported by the client emulators.  The
paper's headline accuracy: under 10% absolute error in the worst case,
under 5% on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import (
    CLOUD_WORKLOADS,
    PAIRED_STRESS,
    client_reported_degradation,
    instruction_rate_degradation,
    run_colocation,
)

#: Stressor intensity sweeps (the knob the paper varies per stressor):
#: working-set size 6 MB - 512 MB for memory-stress, 50-700 Mbps for
#: network-stress, 1-10 MB/s for disk-stress.  The stress level scales
#: with the working set so the resulting degradations span roughly the
#: paper's 5%-50% band instead of saturating immediately.
DEFAULT_SWEEPS: Dict[str, List[dict]] = {
    "memory": [
        {"stress_kwargs": {"working_set_mb": ws}, "stress_level": level}
        for ws, level in (
            (6.0, 0.10),
            (24.0, 0.14),
            (64.0, 0.18),
            (128.0, 0.22),
            (256.0, 0.28),
            (512.0, 0.35),
        )
    ],
    "network": [
        {"stress_kwargs": {"target_mbps": mbps}, "stress_level": 1.0}
        for mbps in (50.0, 150.0, 300.0, 450.0, 600.0, 700.0)
    ],
    "disk": [
        {
            "stress_kwargs": {"target_mbps": mbps, "sequential_fraction": 0.15},
            "stress_level": 1.0,
        }
        for mbps in (1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
    ],
}


@dataclass
class DegradationPoint:
    """One bar group of Figure 9."""

    workload: str
    stress_kind: str
    stress_setting: dict
    client_reported: float
    estimated: float

    @property
    def absolute_error(self) -> float:
        return abs(self.estimated - self.client_reported)


@dataclass
class DegradationAccuracyResult:
    """Figure 9 for one workload."""

    workload: str
    stress_kind: str
    points: List[DegradationPoint]

    def mean_absolute_error(self) -> float:
        if not self.points:
            return 0.0
        return float(np.mean([p.absolute_error for p in self.points]))

    def max_absolute_error(self) -> float:
        if not self.points:
            return 0.0
        return float(np.max([p.absolute_error for p in self.points]))

    def correlation(self) -> float:
        """Pearson correlation between estimated and client-reported degradation."""
        if len(self.points) < 2:
            return 1.0
        est = np.array([p.estimated for p in self.points])
        rep = np.array([p.client_reported for p in self.points])
        if est.std() < 1e-12 or rep.std() < 1e-12:
            return 0.0
        return float(np.corrcoef(est, rep)[0, 1])


def run_workload(
    workload: str,
    stress_kind: Optional[str] = None,
    sweep: Optional[Sequence[dict]] = None,
    load: float = 1.1,
    epochs: int = 15,
    seed: int = 61,
) -> DegradationAccuracyResult:
    """Run the Figure 9 sweep for one workload.

    The paper runs "at the maximum-possible request rate"; we use a high
    offered load so the client-visible latency is sensitive to capacity
    loss, which is what makes the client-reported and instruction-rate
    degradations comparable.
    """
    stress_kind = stress_kind or PAIRED_STRESS[workload]
    sweep = list(sweep) if sweep is not None else DEFAULT_SWEEPS[stress_kind]
    workload_kwargs = {}
    if workload == "data_analytics":
        workload_kwargs = {"remote_fetch_fraction": 0.6}

    isolation = run_colocation(
        workload, load=load, epochs=epochs, seed=seed, workload_kwargs=workload_kwargs
    )
    points: List[DegradationPoint] = []
    for setting in sweep:
        production = run_colocation(
            workload,
            load=load,
            stress_kind=stress_kind,
            stress_level=setting.get("stress_level", 1.0),
            stress_kwargs=setting.get("stress_kwargs", {}),
            epochs=epochs,
            seed=seed + 1,
            share_cache_domain=(stress_kind == "memory"),
            workload_kwargs=workload_kwargs,
        )
        reported = client_reported_degradation(production, isolation)
        estimated = instruction_rate_degradation(production, isolation)
        points.append(
            DegradationPoint(
                workload=workload,
                stress_kind=stress_kind,
                stress_setting=setting,
                client_reported=reported,
                estimated=estimated,
            )
        )
    return DegradationAccuracyResult(
        workload=workload, stress_kind=stress_kind, points=points
    )


def run(
    workloads: Sequence[str] = CLOUD_WORKLOADS,
    epochs: int = 15,
    seed: int = 61,
) -> Dict[str, DegradationAccuracyResult]:
    """Run Figure 9 for every workload with its paired stressor."""
    return {
        workload: run_workload(workload, epochs=epochs, seed=seed)
        for workload in workloads
    }
