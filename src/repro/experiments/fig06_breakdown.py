"""Figure 6 — CPI-stack breakdown pinpoints the culprit resource.

The paper carefully tunes three interference scenarios per workload —
Scenario A stresses the shared last-level cache, Scenario B the
front-side bus, Scenario C the I/O subsystem — and shows that the
augmented CPI stack computed from production-vs-isolation counters
identifies the resource whose stall component grew the most.

``run`` reproduces the nine (workload x scenario) cells: for each it
reports the per-resource stall breakdown in isolation and production,
the analyzer's per-resource degradation factors, the blamed culprit and
whether it matches the scenario's intended resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import CLOUD_WORKLOADS, run_colocation
from repro.metrics.cpi import CPIStackModel, Resource, StallBreakdown


@dataclass
class ScenarioSpec:
    """How one interference scenario is injected."""

    name: str
    description: str
    stress_kind: str
    stress_kwargs: Dict[str, float]
    stress_level: float
    share_cache_domain: bool
    #: The resources the analyzer is expected to blame.
    expected_culprits: Tuple[Resource, ...]


#: The three scenarios of Figure 6.
SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="A",
        description="shared last-level cache pollution",
        stress_kind="memory",
        stress_kwargs={"working_set_mb": 11.0, "locality": 0.9},
        stress_level=0.6,
        share_cache_domain=True,
        expected_culprits=(Resource.CACHE, Resource.MEMORY_BUS),
    ),
    ScenarioSpec(
        name="B",
        description="front-side bus / memory interconnect saturation",
        stress_kind="memory",
        stress_kwargs={"working_set_mb": 384.0},
        stress_level=1.0,
        share_cache_domain=False,
        expected_culprits=(Resource.MEMORY_BUS,),
    ),
    ScenarioSpec(
        name="C",
        description="I/O subsystem (disk + network) contention",
        stress_kind="disk",
        stress_kwargs={"target_mbps": 20.0, "sequential_fraction": 0.1},
        stress_level=1.0,
        share_cache_domain=False,
        expected_culprits=(Resource.DISK, Resource.NETWORK),
    ),
)


@dataclass
class BreakdownCell:
    """One (workload, scenario) cell of Figure 6."""

    workload: str
    scenario: str
    isolation: StallBreakdown
    production: StallBreakdown
    factors: Dict[Resource, float]
    culprit: Resource
    expected_culprits: Tuple[Resource, ...]

    @property
    def culprit_correct(self) -> bool:
        return self.culprit in self.expected_culprits


@dataclass
class BreakdownResult:
    """All cells of Figure 6."""

    cells: List[BreakdownCell]

    def accuracy(self) -> float:
        if not self.cells:
            return 0.0
        return sum(1 for c in self.cells if c.culprit_correct) / len(self.cells)

    def cell(self, workload: str, scenario: str) -> BreakdownCell:
        for c in self.cells:
            if c.workload == workload and c.scenario == scenario:
                return c
        raise KeyError((workload, scenario))


def _io_scenario_for(workload: str) -> ScenarioSpec:
    """Scenario C uses the I/O resource each workload actually exercises."""
    if workload == "data_analytics":
        return ScenarioSpec(
            name="C",
            description="network contention (iperf)",
            stress_kind="network",
            stress_kwargs={"target_mbps": 700.0},
            stress_level=1.0,
            share_cache_domain=False,
            expected_culprits=(Resource.NETWORK,),
        )
    return SCENARIO_C_DISK


#: Disk variant of Scenario C shared by the request-serving workloads.
SCENARIO_C_DISK = ScenarioSpec(
    name="C",
    description="disk contention (random file copy)",
    stress_kind="disk",
    stress_kwargs={"target_mbps": 20.0, "sequential_fraction": 0.1},
    stress_level=1.0,
    share_cache_domain=False,
    expected_culprits=(Resource.DISK,),
)


def run(
    workloads: Sequence[str] = CLOUD_WORKLOADS,
    load: float = 0.7,
    epochs: int = 15,
    seed: int = 31,
) -> BreakdownResult:
    """Reproduce the Figure 6 grid."""
    model = CPIStackModel.for_architecture("xeon_x5472")
    cells: List[BreakdownCell] = []
    for workload in workloads:
        workload_kwargs = {}
        if workload == "data_analytics":
            workload_kwargs = {"remote_fetch_fraction": 0.6}
        isolation = run_colocation(
            workload,
            load=load,
            stress_kind=None,
            epochs=epochs,
            seed=seed,
            workload_kwargs=workload_kwargs,
        )
        iso_counters = isolation.aggregate_counters()
        for scenario in SCENARIOS:
            spec = scenario if scenario.name != "C" else _io_scenario_for(workload)
            production = run_colocation(
                workload,
                load=load,
                stress_kind=spec.stress_kind,
                stress_level=spec.stress_level,
                stress_kwargs=dict(spec.stress_kwargs),
                epochs=epochs,
                seed=seed + 1,
                share_cache_domain=spec.share_cache_domain,
                workload_kwargs=workload_kwargs,
            )
            prod_counters = production.aggregate_counters()
            stack = model.compare(prod_counters, iso_counters)
            factors = stack.factors()
            shared = {r: f for r, f in factors.items() if r is not Resource.CORE}
            culprit = max(shared, key=lambda r: shared[r])
            cells.append(
                BreakdownCell(
                    workload=workload,
                    scenario=spec.name,
                    isolation=stack.isolation,
                    production=stack.production,
                    factors=factors,
                    culprit=culprit,
                    expected_culprits=spec.expected_culprits,
                )
            )
    return BreakdownResult(cells=cells)
