"""Figure 8 — warning-system detection and false-positive rates over 3 days.

The paper replays three days of the HotMail load trace against each
cloud workload while injecting memory-stress interference at the times
(and with the intensities) learned from its EC2 measurements.  It
reports, per day:

* the detection rate — the fraction of injected interference that
  DeepDive identified (100% in the paper: no false negatives);
* the false-positive rate — the fraction of interference-free epochs in
  which the warning system (unnecessarily) invoked the analyzer; high on
  the first day while the normal behaviours are still being learned,
  near zero afterwards.

Ground truth follows the paper's methodology: "the clients label certain
performance degradation as due to interference only if the amount of
degradation is larger than 20%".  We therefore run a shadow copy of the
victim on an identical, interference-free reference host under the same
load trace, and an epoch counts as true interference only when the
client-visible performance drop versus the shadow exceeds the threshold.

The experiment also drives qualitative workload changes (a repeating
palette of request-mix states) so day-one false positives have a cause
that later days can learn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from repro.core.config import DeepDiveConfig
from repro.core.deepdive import DeepDive
from repro.experiments.common import make_stress_vm, make_victim_vm
from repro.virt.cluster import Cluster
from repro.virt.vmm import Host
from repro.workloads.traces import ec2_like_interference_schedule, hotmail_like_trace

#: Ground-truth threshold: client-visible degradation above which an epoch
#: counts as interference (the paper's 20%).
GROUND_TRUTH_THRESHOLD = 0.20


@dataclass
class DayStats:
    """Detection / false-positive statistics for one simulated day."""

    day: int
    interference_epochs: int
    detected_epochs: int
    clean_epochs: int
    false_positive_epochs: int
    analyzer_invocations: int

    @property
    def detection_rate(self) -> float:
        if self.interference_epochs == 0:
            return 1.0
        return self.detected_epochs / self.interference_epochs

    @property
    def false_positive_rate(self) -> float:
        if self.clean_epochs == 0:
            return 0.0
        return self.false_positive_epochs / self.clean_epochs


@dataclass
class DetectionResult:
    """Figure 8 for one workload."""

    workload: str
    days: List[DayStats]
    total_profiling_seconds: float
    missed_episodes: int

    def detection_rates(self) -> List[float]:
        return [d.detection_rate for d in self.days]

    def false_positive_rates(self) -> List[float]:
        return [d.false_positive_rate for d in self.days]


#: Fixed palettes of qualitative workload states; the drift cycles through
#: them so day one sees "new" behaviours that later days recognise.
_STATE_PALETTES: Dict[str, List[dict]] = {
    "data_serving": [
        {"key_skew": 0.6, "read_fraction": 0.9},
        {"key_skew": 0.8, "read_fraction": 0.95},
        {"key_skew": 0.45, "read_fraction": 0.8},
        {"key_skew": 0.7, "read_fraction": 0.7},
    ],
    "web_search": [
        {"word_skew": 0.7},
        {"word_skew": 0.85},
        {"word_skew": 0.55},
        {"word_skew": 0.75},
    ],
    "data_analytics": [
        {"remote_fetch_fraction": 0.5, "shuffle_fraction": 0.35},
        {"remote_fetch_fraction": 0.65, "shuffle_fraction": 0.3},
        {"remote_fetch_fraction": 0.4, "shuffle_fraction": 0.4},
        {"remote_fetch_fraction": 0.55, "shuffle_fraction": 0.35},
    ],
}


def _apply_state(workload, state: dict) -> None:
    for key, value in state.items():
        setattr(workload, key, value)


def run_workload(
    workload: str,
    days: int = 3,
    epochs_per_day: int = 48,
    episodes_per_day: float = 3.0,
    state_changes_per_day: int = 4,
    seed: int = 53,
    config: Optional[DeepDiveConfig] = None,
    stress_working_set_mb: float = 160.0,
) -> DetectionResult:
    """Run the Figure 8 experiment for one workload."""
    horizon = days * epochs_per_day
    trace = hotmail_like_trace(
        days=days,
        epochs_per_hour=max(1, epochs_per_day // 24),
        peak=0.9,
        trough=0.35,
        weekday_amplitude=0.03,
        seed=seed,
    )
    schedule = ec2_like_interference_schedule(
        horizon_epochs=horizon,
        episodes_per_day=episodes_per_day,
        epochs_per_day=epochs_per_day,
        min_intensity=0.6,
        max_intensity=1.0,
        seed=seed + 1,
    )

    config = config or DeepDiveConfig(
        profile_epochs=10,
        bootstrap_load_levels=5,
        bootstrap_epochs_per_level=6,
        smoothing_epochs=1,
    )
    cluster = Cluster(num_hosts=2, seed=seed, noise=0.01)
    victim = make_victim_vm(workload, vm_name=f"{workload}-victim")
    cluster.place_vm(victim, "pm0", load=float(trace[0]))
    stress = make_stress_vm(
        "memory", vm_name="stressor", working_set_mb=stress_working_set_mb
    )
    cluster.place_vm(stress, "pm0", load=0.0)

    # Shadow host: an identical victim running interference-free under the
    # same load trace, providing the client-side ground truth.
    shadow_host = Host(name="shadow", noise=0.01, seed=seed + 100)
    shadow_vm = victim.clone("shadow-victim")
    shadow_host.add_vm(shadow_vm, load=float(trace[0]), cores=[0, 1])

    deepdive = DeepDive(cluster, config=config)
    deepdive.bootstrap_vm(victim.name)

    states = _STATE_PALETTES[workload]
    day_stats: List[DayStats] = []
    state_index = 0
    detected_episode_epochs: List[int] = []

    for day in range(days):
        interference_epochs = 0
        detected_epochs = 0
        clean_epochs = 0
        false_positives = 0
        invocations_before = deepdive.analyzer_invocations()
        for step in range(epochs_per_day):
            epoch = day * epochs_per_day + step
            load = float(trace[min(epoch, len(trace) - 1)])
            if (
                state_changes_per_day > 0
                and step % max(1, epochs_per_day // state_changes_per_day) == 0
            ):
                state = states[state_index % len(states)]
                _apply_state(victim.workload, state)
                _apply_state(shadow_vm.workload, state)
                state_index += 1

            intensity = schedule.intensity_at(epoch)
            cluster.get_host("pm0").set_load(stress.name, intensity)
            cluster.step(loads={victim.name: load})
            shadow_host.step(loads={shadow_vm.name: load})
            report = deepdive.observe_epoch(loads={victim.name: load})
            observation = report.observations.get(victim.name)
            if observation is None:
                continue

            # Ground truth: client-visible performance loss versus shadow.
            prod_rate = (
                cluster.get_host("pm0").latest_counters(victim.name).inst_retired
            )
            shadow_rate = shadow_host.latest_counters(shadow_vm.name).inst_retired
            true_degradation = 0.0
            if shadow_rate > 0:
                true_degradation = max(0.0, 1.0 - prod_rate / shadow_rate)
            truly_interfered = (
                schedule.active_at(epoch)
                and true_degradation > GROUND_TRUTH_THRESHOLD
            )

            flagged = observation.interference_confirmed
            fired = (
                observation.warning.should_analyze
                or observation.warning.flags_interference
            )
            if truly_interfered:
                interference_epochs += 1
                if flagged:
                    detected_epochs += 1
                    detected_episode_epochs.append(epoch)
            else:
                clean_epochs += 1
                if fired and not flagged:
                    false_positives += 1
        day_stats.append(
            DayStats(
                day=day + 1,
                interference_epochs=interference_epochs,
                detected_epochs=detected_epochs,
                clean_epochs=clean_epochs,
                false_positive_epochs=false_positives,
                analyzer_invocations=deepdive.analyzer_invocations()
                - invocations_before,
            )
        )

    # Episode-level misses: an episode is missed when it contained ground-
    # truth interference epochs and none of them was flagged.
    missed_episodes = 0
    for episode in schedule:
        if not any(
            episode.start_epoch <= e < episode.end_epoch
            for e in detected_episode_epochs
        ):
            had_truth = any(
                d.interference_epochs > 0
                for d in day_stats
                if episode.start_epoch // epochs_per_day == d.day - 1
            )
            if had_truth:
                missed_episodes += 1

    return DetectionResult(
        workload=workload,
        days=day_stats,
        total_profiling_seconds=deepdive.total_profiling_seconds(),
        missed_episodes=missed_episodes,
    )


def run(
    workloads: Sequence[str] = ("data_serving", "web_search", "data_analytics"),
    days: int = 3,
    epochs_per_day: int = 48,
    seed: int = 53,
) -> Dict[str, DetectionResult]:
    """Run Figure 8 for every workload."""
    return {
        workload: run_workload(
            workload, days=days, epochs_per_day=epochs_per_day, seed=seed
        )
        for workload in workloads
    }
