"""Figure 4 — normalised metrics separate normal behaviour from interference.

For each of the three cloud workloads the paper collects the Table 1
metrics under many different load intensities and workload parameters
(key/word popularity, read/write mix), with and without injected
interference, normalises them by instructions retired, and shows that
the no-interference points cluster on one side of the (L1, L2, memory)
space while the interference points deviate clearly.

``run`` reproduces that data collection and reports, per workload, the
point clouds plus a Fisher-style separation score along the paper's
three displayed dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.common import (
    CLOUD_WORKLOADS,
    centroid_separation,
    run_colocation,
)
from repro.metrics.sample import MetricVector

#: The three dimensions displayed in the paper's Figure 4: L1, L2, memory.
DISPLAY_DIMENSIONS: Tuple[str, ...] = ("l1_repl_pki", "l2_lines_in_pki", "bus_tran_pki")


@dataclass
class WorkloadClusterResult:
    """Point clouds and separation score for one workload."""

    workload: str
    normal_points: List[MetricVector]
    interference_points: List[MetricVector]
    separation: float

    def normal_matrix(self) -> np.ndarray:
        return np.vstack([v.as_array(DISPLAY_DIMENSIONS) for v in self.normal_points])

    def interference_matrix(self) -> np.ndarray:
        return np.vstack(
            [v.as_array(DISPLAY_DIMENSIONS) for v in self.interference_points]
        )


@dataclass
class ClusterSeparationResult:
    """Figure 4: one entry per cloud workload."""

    per_workload: Dict[str, WorkloadClusterResult]

    def min_separation(self) -> float:
        return min(r.separation for r in self.per_workload.values())


def _workload_variations(workload: str, rng: np.random.Generator, count: int):
    """Different qualitative settings (popularities, mixes) per workload."""
    variations = []
    for _ in range(count):
        if workload == "data_serving":
            variations.append(
                {"key_skew": float(rng.uniform(0.4, 0.9)),
                 "read_fraction": float(rng.uniform(0.7, 0.98))}
            )
        elif workload == "web_search":
            variations.append({"word_skew": float(rng.uniform(0.5, 0.9))})
        else:
            variations.append(
                {"remote_fetch_fraction": float(rng.uniform(0.3, 0.7)),
                 "shuffle_fraction": float(rng.uniform(0.25, 0.45))}
            )
    return variations


def run(
    workloads: Sequence[str] = CLOUD_WORKLOADS,
    load_levels: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
    variations_per_workload: int = 3,
    interference_levels: Sequence[float] = (0.5, 0.75, 1.0),
    epochs: int = 8,
    seed: int = 11,
    normalized: bool = True,
) -> ClusterSeparationResult:
    """Collect the Figure 4 point clouds.

    ``normalized=False`` is used by the normalisation ablation: it keeps
    the raw counter magnitudes (scaled to a common base) instead of the
    per-instruction normalisation, demonstrating why the paper divides
    everything by instructions retired.
    """
    rng = np.random.default_rng(seed)
    per_workload: Dict[str, WorkloadClusterResult] = {}
    for workload in workloads:
        normal: List[MetricVector] = []
        interference: List[MetricVector] = []
        variations = _workload_variations(workload, rng, variations_per_workload)
        for variation in variations:
            for load in load_levels:
                run_quiet = run_colocation(
                    workload,
                    load=load,
                    stress_kind=None,
                    epochs=epochs,
                    seed=int(rng.integers(0, 2**31)),
                    workload_kwargs=variation,
                )
                normal.extend(
                    _vectors(run_quiet.victim_samples, normalized)
                )
            for level in interference_levels:
                run_stress = run_colocation(
                    workload,
                    load=float(rng.choice(load_levels)),
                    stress_kind="memory",
                    stress_level=level,
                    stress_kwargs={"working_set_mb": float(rng.uniform(48.0, 256.0))},
                    epochs=epochs,
                    seed=int(rng.integers(0, 2**31)),
                    workload_kwargs=variations[0],
                    share_cache_domain=True,
                )
                interference.extend(
                    _vectors(run_stress.victim_samples, normalized)
                )
        separation = centroid_separation(normal, interference, DISPLAY_DIMENSIONS)
        per_workload[workload] = WorkloadClusterResult(
            workload=workload,
            normal_points=normal,
            interference_points=interference,
            separation=separation,
        )
    return ClusterSeparationResult(per_workload=per_workload)


def _vectors(samples, normalized: bool) -> List[MetricVector]:
    if normalized:
        return [MetricVector.from_sample(s) for s in samples]
    # Raw-counter variant (ablation): express the displayed dimensions as
    # raw event counts scaled down to comparable magnitudes, bypassing the
    # per-instruction normalisation.
    out: List[MetricVector] = []
    for s in samples:
        vector = MetricVector.from_sample(s)
        raw_values = dict(vector.values)
        raw_values["l1_repl_pki"] = s.l1d_repl / 1e6
        raw_values["l2_lines_in_pki"] = s.l2_lines_in / 1e6
        raw_values["bus_tran_pki"] = s.bus_tran_any / 1e6
        out.append(MetricVector(values=raw_values))
    return out
