"""Figure 10 — the synthetic benchmark mimics the real VM.

The paper measures the performance degradation that a monitored VM and
its *synthetic representation* experience when co-located with each
stress workload.  If the two match, the placement manager can use the
synthetic benchmark to test candidate destinations instead of actually
migrating the VM.  The paper reports a median estimation error of 8%
and a mean of 10% across all experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import (
    CLOUD_WORKLOADS,
    PAIRED_STRESS,
    make_stress_vm,
    make_victim_vm,
    run_colocation,
)
from repro.hardware.specs import MachineSpec, XEON_X5472
from repro.metrics.counters import CounterSample
from repro.metrics.normalization import aggregate_samples
from repro.metrics.sample import MetricVector
from repro.regression.training import SyntheticBenchmarkTrainer, TrainedSynthesizer
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Host


@dataclass
class SyntheticAccuracyPoint:
    """One bar group of Figure 10: real vs synthetic degradation."""

    workload: str
    stress_kind: str
    stress_setting: dict
    real_degradation: float
    synthetic_degradation: float

    @property
    def absolute_error(self) -> float:
        return abs(self.real_degradation - self.synthetic_degradation)


@dataclass
class SyntheticAccuracyResult:
    """Figure 10 across workloads and stress settings."""

    points: List[SyntheticAccuracyPoint]
    training_error: float

    def mean_absolute_error(self) -> float:
        if not self.points:
            return 0.0
        return float(np.mean([p.absolute_error for p in self.points]))

    def median_absolute_error(self) -> float:
        if not self.points:
            return 0.0
        return float(np.median([p.absolute_error for p in self.points]))


#: Stress settings per stressor kind used for the accuracy sweep (stress
#: level scaled so the real degradations stay in the paper's 5%-50% band).
DEFAULT_SETTINGS: Dict[str, List[dict]] = {
    "memory": [
        {"working_set_mb": 24.0, "stress_level": 0.12},
        {"working_set_mb": 128.0, "stress_level": 0.2},
        {"working_set_mb": 384.0, "stress_level": 0.3},
    ],
    "network": [
        {"target_mbps": 200.0, "stress_level": 1.0},
        {"target_mbps": 500.0, "stress_level": 1.0},
        {"target_mbps": 700.0, "stress_level": 1.0},
    ],
    "disk": [
        {"target_mbps": 3.0, "sequential_fraction": 0.15, "stress_level": 1.0},
        {"target_mbps": 6.0, "sequential_fraction": 0.15, "stress_level": 1.0},
        {"target_mbps": 10.0, "sequential_fraction": 0.15, "stress_level": 1.0},
    ],
}


def _degradation_when_colocated(
    probe: VirtualMachine,
    probe_load: float,
    stress_kind: str,
    stress_setting: dict,
    epochs: int,
    spec: MachineSpec,
    seed: int,
) -> float:
    """Instruction-rate degradation of ``probe`` due to one stressor."""
    stress_setting = dict(stress_setting)
    stress_level = stress_setting.pop("stress_level", 1.0)

    def run_once(with_stress: bool) -> float:
        host = Host(name="eval", spec=spec, noise=0.005, seed=seed)
        clone = probe.clone(f"{probe.name}-{'c' if with_stress else 'i'}")
        host.add_vm(clone, load=probe_load, cores=[0, 1])
        if with_stress:
            stress = make_stress_vm(stress_kind, **stress_setting)
            cores = [1, 3] if stress_kind == "memory" else [2, 3]
            host.add_vm(stress, load=stress_level, cores=cores)
        samples: List[CounterSample] = []
        for _ in range(epochs):
            results = host.step()
            samples.append(results[clone.name].counters)
        aggregate = aggregate_samples(samples)
        return aggregate.inst_retired / max(aggregate.epoch_seconds, 1e-9)

    isolation_rate = run_once(with_stress=False)
    production_rate = run_once(with_stress=True)
    if isolation_rate <= 0:
        return 0.0
    return max(0.0, 1.0 - production_rate / isolation_rate)


def run(
    workloads: Sequence[str] = CLOUD_WORKLOADS,
    load: float = 1.1,
    epochs: int = 12,
    training_samples: int = 200,
    seed: int = 71,
    synthesizer: Optional[TrainedSynthesizer] = None,
    spec: MachineSpec = XEON_X5472,
) -> SyntheticAccuracyResult:
    """Reproduce Figure 10.

    A synthesizer can be passed in to reuse an already trained model
    (training is the expensive, once-per-server-type step).
    """
    if synthesizer is None:
        trainer = SyntheticBenchmarkTrainer(
            machine_spec=spec, samples=training_samples, seed=seed
        )
        synthesizer = trainer.train()

    points: List[SyntheticAccuracyPoint] = []
    for workload in workloads:
        stress_kind = PAIRED_STRESS[workload]
        victim = make_victim_vm(workload)
        # The metric vector (and instruction rate) to mimic: the victim
        # running alone at ``load``.
        solo = run_colocation(workload, load=load, epochs=epochs, seed=seed)
        solo_counters = solo.aggregate_counters()
        target = MetricVector.from_sample(solo_counters)
        target_rate = solo_counters.inst_retired / max(
            solo_counters.epoch_seconds, 1e-9
        )
        benchmark = synthesizer.synthesize(target, target_inst_rate=target_rate)
        synthetic_vm = VirtualMachine(
            name=f"{workload}-synthetic",
            workload=benchmark,
            vcpus=victim.vcpus,
            memory_gb=1.0,
        )
        for setting in DEFAULT_SETTINGS[stress_kind]:
            real = _degradation_when_colocated(
                victim, load, stress_kind, setting, epochs, spec, seed + 3
            )
            synthetic = _degradation_when_colocated(
                synthetic_vm, 1.0, stress_kind, setting, epochs, spec, seed + 3
            )
            points.append(
                SyntheticAccuracyPoint(
                    workload=workload,
                    stress_kind=stress_kind,
                    stress_setting=setting,
                    real_degradation=real,
                    synthetic_degradation=synthetic,
                )
            )
    return SyntheticAccuracyResult(
        points=points, training_error=synthesizer.training_error
    )
