"""Figure 1 — motivation: interference on a public cloud.

The paper runs one Cassandra VM on Amazon EC2 for three days under a
fixed workload and resource allocation and observes periodic throughput
drops / latency spikes it attributes to interference from co-located
VMs.  We reproduce the setup with the Data Serving workload on one
simulated host and an EC2-like interference schedule that switches a
co-located memory-stress VM on and off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.experiments.common import make_stress_vm, make_victim_vm
from repro.virt.vmm import Host
from repro.workloads.traces import (
    InterferenceSchedule,
    ec2_like_interference_schedule,
)


@dataclass
class MotivationResult:
    """Per-epoch throughput/latency plus the injected-interference mask."""

    epochs: int
    throughput: List[float]
    latency_ms: List[float]
    interference_active: List[bool]

    @property
    def mean_throughput_quiet(self) -> float:
        values = [t for t, a in zip(self.throughput, self.interference_active) if not a]
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_throughput_interfered(self) -> float:
        values = [t for t, a in zip(self.throughput, self.interference_active) if a]
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_latency_quiet(self) -> float:
        values = [
            lat for lat, a in zip(self.latency_ms, self.interference_active) if not a
        ]
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_latency_interfered(self) -> float:
        values = [
            lat for lat, a in zip(self.latency_ms, self.interference_active) if a
        ]
        return float(np.mean(values)) if values else 0.0

    def throughput_drop_fraction(self) -> float:
        """Relative throughput drop during interference episodes."""
        quiet = self.mean_throughput_quiet
        if quiet <= 0:
            return 0.0
        return max(0.0, 1.0 - self.mean_throughput_interfered / quiet)

    def latency_increase_fraction(self) -> float:
        """Relative latency increase during interference episodes."""
        quiet = self.mean_latency_quiet
        if quiet <= 0:
            return 0.0
        return max(0.0, self.mean_latency_interfered / quiet - 1.0)


def run(
    epochs: int = 288,
    load: float = 0.7,
    episodes_per_day: float = 3.0,
    epochs_per_day: int = 96,
    seed: int = 7,
    schedule: InterferenceSchedule = None,
) -> MotivationResult:
    """Replay the EC2 motivation experiment.

    ``epochs`` defaults to three simulated days at 96 epochs/day (the
    paper's hour-scale granularity compressed into 15-minute epochs).
    """
    if schedule is None:
        schedule = ec2_like_interference_schedule(
            horizon_epochs=epochs,
            episodes_per_day=episodes_per_day,
            epochs_per_day=epochs_per_day,
            seed=seed,
        )
    host = Host(name="ec2-host", noise=0.01, seed=seed)
    victim = make_victim_vm("data_serving", vm_name="cassandra")
    host.add_vm(victim, load=load, cores=[0, 1])
    stress = make_stress_vm("memory", vm_name="noisy-neighbor", working_set_mb=96.0)
    host.add_vm(stress, load=0.0, cores=[2, 3])

    throughput: List[float] = []
    latency: List[float] = []
    active: List[bool] = []
    for epoch in range(epochs):
        intensity = schedule.intensity_at(epoch)
        host.set_load(stress.name, intensity)
        results = host.step()
        report = results[victim.name].report
        throughput.append(report.throughput)
        latency.append(report.latency_ms)
        active.append(schedule.active_at(epoch))

    return MotivationResult(
        epochs=epochs,
        throughput=throughput,
        latency_ms=latency,
        interference_active=active,
    )
