"""Figure 14 — reaction time under bursty (lognormal) VM arrivals.

Same panels as Figure 13 but with lognormal inter-arrival times, the
paper's "extreme new-VM arrival scenario".  The headline result: fewer
than ten dedicated profiling machines are still enough.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.fig13_reaction_poisson import (
    DEFAULT_ALPHAS,
    DEFAULT_FRACTIONS,
    DEFAULT_SERVERS,
    ReactionTimeFigure,
)
from repro.queueing.arrivals import LognormalArrivals
from repro.queueing.reaction import ReactionTimeStudy


def run(
    interference_fractions: Sequence[float] = DEFAULT_FRACTIONS,
    servers: Sequence[int] = DEFAULT_SERVERS,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    vms_per_day: float = 1000.0,
    days: float = 5.0,
    mean_service_seconds: float = 240.0,
    sigma: float = 1.5,
    seed: int = 5,
) -> ReactionTimeFigure:
    """Reproduce Figure 14."""
    study = ReactionTimeStudy(
        arrivals=LognormalArrivals(vms_per_day=vms_per_day, sigma=sigma, seed=seed),
        days=days,
        mean_service_seconds=mean_service_seconds,
        seed=seed,
    )
    local = study.sweep(interference_fractions, servers, use_global_information=False)
    with_global = study.sweep(
        interference_fractions, servers, use_global_information=True
    )
    alpha_curves = study.alpha_sweep(interference_fractions, alphas, num_servers=4)
    return ReactionTimeFigure(
        local_only=local,
        with_global=with_global,
        alpha_sweep=alpha_curves,
        interference_fractions=list(interference_fractions),
        servers=list(servers),
        alpha_values=list(alphas),
    )


def minimum_servers_under_burst(
    interference_fraction: float = 0.2,
    candidate_servers: Sequence[int] = (2, 4, 6, 8, 10, 12, 16),
    vms_per_day: float = 1000.0,
    sigma: float = 1.5,
    seed: int = 5,
) -> int:
    """The paper's claim: fewer than 10 servers suffice even under bursts."""
    study = ReactionTimeStudy(
        arrivals=LognormalArrivals(vms_per_day=vms_per_day, sigma=sigma, seed=seed),
        seed=seed,
    )
    result = study.minimum_servers_for(
        interference_fraction, candidate_servers, use_global_information=True
    )
    return result if result is not None else max(candidate_servers)
