"""Figure 13 — reaction time under Poisson VM arrivals (1000 VMs/day).

Three panels:

* (a) mean reaction time versus the fraction of VMs undergoing
  interference, for 2/4/8/16 profiling servers, using only local
  information (every analyzer request is served by a profiling run);
* (b) the same sweep when global information lets DeepDive reuse the
  profiling result of sibling VMs running the same application —
  reaction times are roughly halved and fewer servers suffice;
* (c) the same at four servers for a range of Zipf popularity exponents
  alpha (and the no-global-information limit alpha = infinity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.queueing.arrivals import PoissonArrivals
from repro.queueing.reaction import ReactionTimePoint, ReactionTimeStudy


@dataclass
class ReactionTimeFigure:
    """The three panels of Figure 13 (or 14)."""

    #: Panel (a): server count -> curve of points over interference fractions.
    local_only: Dict[int, List[ReactionTimePoint]]
    #: Panel (b): same but with global information.
    with_global: Dict[int, List[ReactionTimePoint]]
    #: Panel (c): alpha -> curve at a fixed server count.
    alpha_sweep: Dict[float, List[ReactionTimePoint]]
    interference_fractions: List[float]
    servers: List[int]
    alpha_values: List[float]

    def mean_reaction(self, panel: str, key, fraction: float) -> float:
        """Mean reaction time (minutes) for one curve at one fraction."""
        curves = {
            "local": self.local_only,
            "global": self.with_global,
            "alpha": self.alpha_sweep,
        }[panel]
        for point in curves[key]:
            if np.isclose(point.interference_fraction, fraction):
                return point.mean_reaction_minutes
        raise KeyError(fraction)

    def speedup_from_global(self, servers: int, fraction: float) -> float:
        """How much global information improves the reaction time."""
        local = self.mean_reaction("local", servers, fraction)
        with_global = self.mean_reaction("global", servers, fraction)
        if with_global <= 0:
            return float("inf")
        return local / with_global


DEFAULT_FRACTIONS = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8)
DEFAULT_SERVERS = (2, 4, 8, 16)
DEFAULT_ALPHAS = (1.0, 1.5, 2.0, 2.5, math.inf)


def run(
    interference_fractions: Sequence[float] = DEFAULT_FRACTIONS,
    servers: Sequence[int] = DEFAULT_SERVERS,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    vms_per_day: float = 1000.0,
    days: float = 5.0,
    mean_service_seconds: float = 240.0,
    seed: int = 3,
) -> ReactionTimeFigure:
    """Reproduce Figure 13."""
    study = ReactionTimeStudy(
        arrivals=PoissonArrivals(vms_per_day=vms_per_day, seed=seed),
        days=days,
        mean_service_seconds=mean_service_seconds,
        seed=seed,
    )
    local = study.sweep(interference_fractions, servers, use_global_information=False)
    with_global = study.sweep(
        interference_fractions, servers, use_global_information=True
    )
    alpha_curves = study.alpha_sweep(interference_fractions, alphas, num_servers=4)
    return ReactionTimeFigure(
        local_only=local,
        with_global=with_global,
        alpha_sweep=alpha_curves,
        interference_fractions=list(interference_fractions),
        servers=list(servers),
        alpha_values=list(alphas),
    )
