"""Figure 12 — DeepDive's profiling overhead versus threshold baselines.

The paper measures, for a Data Serving VM replaying the HotMail trace
under recurring interference, the accumulated profiling time (cloning
plus sandbox execution) of DeepDive and of a baseline that triggers the
analyzer every time the VM's performance varies by more than 5%, 10% or
20% from its reference level.  DeepDive accumulates about twenty
minutes over three days and flattens after the first day; the baselines
keep growing because every load fluctuation triggers a full analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from repro.core.baselines import ThresholdBaseline
from repro.core.config import DeepDiveConfig
from repro.core.deepdive import DeepDive
from repro.experiments.common import make_stress_vm, make_victim_vm
from repro.virt.cluster import Cluster
from repro.workloads.traces import (
    ec2_like_interference_schedule,
    hotmail_like_trace,
)


@dataclass
class OverheadCurve:
    """Accumulated profiling time (minutes) per epoch for one approach."""

    label: str
    cumulative_minutes: List[float]

    @property
    def final_minutes(self) -> float:
        return self.cumulative_minutes[-1] if self.cumulative_minutes else 0.0

    def minutes_at_fraction(self, fraction: float) -> float:
        """Accumulated minutes at a fraction of the horizon (e.g. end of day 1)."""
        if not self.cumulative_minutes:
            return 0.0
        index = min(
            len(self.cumulative_minutes) - 1,
            int(fraction * len(self.cumulative_minutes)),
        )
        return self.cumulative_minutes[index]


@dataclass
class OverheadResult:
    """Figure 12: DeepDive versus the threshold baselines."""

    deepdive: OverheadCurve
    baselines: Dict[float, OverheadCurve]
    epochs: int
    per_profile_seconds: float

    def baseline(self, threshold: float) -> OverheadCurve:
        return self.baselines[threshold]


def run(
    days: int = 3,
    epochs_per_day: int = 48,
    episodes_per_day: float = 2.0,
    baseline_thresholds: Sequence[float] = (0.05, 0.10, 0.20),
    seed: int = 97,
    config: Optional[DeepDiveConfig] = None,
) -> OverheadResult:
    """Reproduce Figure 12 with the Data Serving workload."""
    horizon = days * epochs_per_day
    trace = hotmail_like_trace(
        days=days, epochs_per_hour=max(1, epochs_per_day // 24), seed=seed
    )
    schedule = ec2_like_interference_schedule(
        horizon_epochs=horizon,
        episodes_per_day=episodes_per_day,
        epochs_per_day=epochs_per_day,
        seed=seed + 1,
    )

    config = config or DeepDiveConfig(
        profile_epochs=10,
        bootstrap_load_levels=5,
        bootstrap_epochs_per_level=6,
    )
    cluster = Cluster(num_hosts=2, seed=seed, noise=0.01)
    victim = make_victim_vm("data_serving", vm_name="victim")
    cluster.place_vm(victim, "pm0", load=float(trace[0]))
    stress = make_stress_vm("memory", vm_name="stressor", working_set_mb=128.0)
    cluster.place_vm(stress, "pm0", load=0.0)

    deepdive = DeepDive(cluster, config=config)
    deepdive.bootstrap_vm(victim.name)
    bootstrap_seconds = deepdive.total_profiling_seconds()

    # The cost of one full analyzer invocation (cloning + sandbox run),
    # charged to the baselines every time they trigger.
    per_profile_seconds = (
        deepdive.sandbox.clone_manager.clone_seconds_for(victim)
        + config.profile_epochs * config.epoch_seconds
    )

    baselines = {t: ThresholdBaseline(threshold=t) for t in baseline_thresholds}
    baseline_cumulative: Dict[float, List[float]] = {t: [] for t in baseline_thresholds}
    baseline_seconds: Dict[float, float] = {t: 0.0 for t in baseline_thresholds}
    deepdive_cumulative: List[float] = []

    for epoch in range(horizon):
        load = float(trace[min(epoch, len(trace) - 1)])
        intensity = schedule.intensity_at(epoch)
        cluster.get_host("pm0").set_load(stress.name, intensity)
        cluster.step(loads={victim.name: load})
        deepdive.observe_epoch(loads={victim.name: load})
        deepdive_cumulative.append(
            (deepdive.total_profiling_seconds() - bootstrap_seconds) / 60.0
        )

        sample = cluster.get_host("pm0").latest_counters(victim.name)
        for threshold, baseline in baselines.items():
            decision = baseline.observe(sample)
            if decision.trigger:
                baseline_seconds[threshold] += per_profile_seconds
            baseline_cumulative[threshold].append(baseline_seconds[threshold] / 60.0)

    return OverheadResult(
        deepdive=OverheadCurve(
            label="DeepDive", cumulative_minutes=deepdive_cumulative
        ),
        baselines={
            t: OverheadCurve(
                label=f"Baseline-{int(t * 100)}%",
                cumulative_minutes=baseline_cumulative[t],
            )
            for t in baseline_thresholds
        },
        epochs=horizon,
        per_profile_seconds=per_profile_seconds,
    )
