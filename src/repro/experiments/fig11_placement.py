"""Figure 11 — the placement manager predicts interference on destinations.

An aggressive memory-stress VM has to be moved off an interfered host.
Three candidate destination PMs each run one of the cloud workloads.
DeepDive runs the aggressor's synthetic representation on every
candidate (in the sandbox, co-located with clones of the candidate's
residents) and picks the destination with the least predicted
interference.  The figure compares the degradation that actually results
at the chosen destination against the best possible choice (oracle: try
every real migration), the average over all choices, and the worst
choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import DeepDiveConfig
from repro.core.placement import PlacementManager
from repro.experiments.common import make_stress_vm, make_victim_vm
from repro.hardware.specs import XEON_X5472
from repro.metrics.counters import CounterSample
from repro.metrics.normalization import aggregate_samples
from repro.regression.training import SyntheticBenchmarkTrainer, TrainedSynthesizer
from repro.virt.sandbox import SandboxEnvironment
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Host


@dataclass
class PlacementOutcome:
    """Actual degradation caused on one candidate host by the real migration."""

    host_name: str
    resident_workload: str
    actual_degradation: float
    predicted_score: float


@dataclass
class PlacementRobustnessResult:
    """Figure 11: chosen vs best/average/worst destination."""

    outcomes: List[PlacementOutcome]
    chosen_host: str
    chosen_degradation: float
    best_host: str
    best_degradation: float
    average_degradation: float
    worst_degradation: float

    @property
    def chose_best(self) -> bool:
        return np.isclose(self.chosen_degradation, self.best_degradation) or (
            self.chosen_host == self.best_host
        )

    @property
    def regret(self) -> float:
        """Extra degradation of the chosen destination over the oracle best."""
        return max(0.0, self.chosen_degradation - self.best_degradation)


#: The candidate hosts' resident workloads and their sensitivity-relevant
#: loads: a heavily loaded memory-sensitive Data Serving node, a lightly
#: loaded Web Search node, and a near-saturated Data Analytics node.
DEFAULT_CANDIDATES: Sequence[Dict] = (
    {"workload": "data_serving", "load": 0.95},
    {"workload": "web_search", "load": 0.4},
    {"workload": "data_analytics", "load": 0.95},
)


def _actual_migration_degradation(
    aggressor: VirtualMachine,
    resident_workload: str,
    resident_load: float,
    epochs: int,
    seed: int,
    aggressor_load: float = 1.0,
) -> float:
    """Ground truth: degradation of the resident VM if the aggressor moved in."""

    def resident_rate(with_aggressor: bool) -> float:
        host = Host(name="dest", spec=XEON_X5472, noise=0.005, seed=seed)
        resident = make_victim_vm(resident_workload, vm_name="resident")
        host.add_vm(resident, load=resident_load, cores=[0, 1])
        if with_aggressor:
            # The hypervisor pins the migrated VM onto the free cores
            # (separate cache domain), matching how the placement manager
            # co-locates the synthetic probe during its sandbox test.
            host.add_vm(
                aggressor.clone("aggressor-moved"), load=aggressor_load, cores=[2, 3]
            )
        samples: List[CounterSample] = []
        for _ in range(epochs):
            results = host.step()
            samples.append(results[resident.name].counters)
        aggregate = aggregate_samples(samples)
        return aggregate.inst_retired / max(aggregate.epoch_seconds, 1e-9)

    baseline = resident_rate(with_aggressor=False)
    with_vm = resident_rate(with_aggressor=True)
    if baseline <= 0:
        return 0.0
    return max(0.0, 1.0 - with_vm / baseline)


def run(
    candidates: Sequence[Dict] = DEFAULT_CANDIDATES,
    aggressor_working_set_mb: float = 64.0,
    aggressor_intensity: float = 0.5,
    eval_epochs: int = 12,
    training_samples: int = 120,
    seed: int = 83,
    synthesizer: Optional[TrainedSynthesizer] = None,
    use_synthetic: bool = True,
) -> PlacementRobustnessResult:
    """Reproduce Figure 11.

    ``use_synthetic=False`` makes the placement manager clone the real
    aggressor instead of its synthetic representation (an upper bound on
    the achievable accuracy, used by the ablation bench).
    """
    if synthesizer is None and use_synthetic:
        trainer = SyntheticBenchmarkTrainer(samples=training_samples, seed=seed)
        synthesizer = trainer.train()

    config = DeepDiveConfig(
        placement_eval_epochs=eval_epochs, profile_epochs=eval_epochs
    )
    sandbox = SandboxEnvironment(
        num_hosts=1, spec=XEON_X5472, profile_epochs=eval_epochs, seed=seed
    )
    manager = PlacementManager(
        sandbox=sandbox,
        synthesizer=synthesizer if use_synthetic else None,
        config=config,
    )

    # The aggressor we must place, plus its recent production counters
    # (collected by running it alone briefly at its production intensity).
    aggressor = make_stress_vm(
        "memory", vm_name="aggressor", working_set_mb=aggressor_working_set_mb
    )
    probe_host = Host(name="probe", spec=XEON_X5472, noise=0.005, seed=seed)
    probe_host.add_vm(aggressor, load=aggressor_intensity)
    recent: List[CounterSample] = []
    for _ in range(eval_epochs):
        results = probe_host.step()
        recent.append(results[aggressor.name].counters)
    probe_host.remove_vm(aggressor.name)

    # Candidate hosts with their resident workloads.
    candidate_hosts: Dict[str, Host] = {}
    residents: Dict[str, Dict] = {}
    for i, candidate in enumerate(candidates):
        host = Host(name=f"candidate{i}", spec=XEON_X5472, noise=0.005, seed=seed + i)
        resident = make_victim_vm(candidate["workload"], vm_name=f"resident{i}")
        host.add_vm(resident, load=candidate["load"], cores=[0, 1])
        candidate_hosts[host.name] = host
        residents[host.name] = candidate

    decision = manager.decide(
        aggressor,
        source_host="source",
        candidates=candidate_hosts,
        recent_samples=recent,
        eval_epochs=eval_epochs,
    )

    outcomes: List[PlacementOutcome] = []
    for evaluation in decision.evaluations:
        candidate = residents[evaluation.host_name]
        actual = _actual_migration_degradation(
            aggressor,
            candidate["workload"],
            candidate["load"],
            epochs=eval_epochs,
            seed=seed + 11,
            aggressor_load=aggressor_intensity,
        )
        outcomes.append(
            PlacementOutcome(
                host_name=evaluation.host_name,
                resident_workload=candidate["workload"],
                actual_degradation=actual,
                predicted_score=evaluation.score,
            )
        )

    by_actual = sorted(outcomes, key=lambda o: o.actual_degradation)
    chosen = next(o for o in outcomes if o.host_name == decision.destination)
    return PlacementRobustnessResult(
        outcomes=outcomes,
        chosen_host=chosen.host_name,
        chosen_degradation=chosen.actual_degradation,
        best_host=by_actual[0].host_name,
        best_degradation=by_actual[0].actual_degradation,
        average_degradation=float(np.mean([o.actual_degradation for o in outcomes])),
        worst_degradation=by_actual[-1].actual_degradation,
    )
