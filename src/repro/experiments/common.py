"""Shared experiment infrastructure.

Builders for the standard testbed configurations the paper's evaluation
uses: a victim VM running one of the three cloud workloads, an optional
co-located stress VM, an isolation baseline on an identical machine, and
helpers to measure client-visible degradation (the ground truth DeepDive
never sees but the evaluation scores against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.specs import MachineSpec, XEON_X5472
from repro.metrics.counters import CounterSample
from repro.metrics.sample import MetricVector
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Host
from repro.workloads.base import PerformanceReport, Workload
from repro.workloads.cloud import make_cloud_workload
from repro.workloads.stress import make_stress_workload

#: The three cloud workloads of the evaluation, in the paper's order.
CLOUD_WORKLOADS: Tuple[str, ...] = ("data_serving", "web_search", "data_analytics")

#: The stress workload the paper pairs with each cloud workload in the
#: degradation-accuracy experiments (Section 5.3).
PAIRED_STRESS: Dict[str, str] = {
    "data_serving": "memory",
    "data_analytics": "network",
    "web_search": "disk",
}


@dataclass
class ColocationRun:
    """Result of running a victim VM with (or without) a co-located stressor."""

    workload: str
    stress_kind: Optional[str]
    stress_level: float
    #: Per-epoch victim counter samples.
    victim_samples: List[CounterSample]
    #: Per-epoch victim client-visible performance.
    victim_reports: List[PerformanceReport]
    #: Mean client-visible latency (ms) over the run.
    mean_latency_ms: float
    #: Mean client-visible throughput over the run.
    mean_throughput: float
    #: Mean instruction-retirement rate (instructions per second).
    mean_inst_rate: float
    #: Mean request-completion rate seen by a closed-loop client emulator
    #: (requests or tasks per second).  Differs slightly from the raw
    #: instruction rate because a degraded service spends extra
    #: instructions per request on retries, timeouts and queue management,
    #: which is what makes the paper's Figure 9 comparison non-trivial.
    mean_request_rate: float = 0.0

    def aggregate_counters(self) -> CounterSample:
        merged = self.victim_samples[0]
        for sample in self.victim_samples[1:]:
            merged = merged.merged(sample)
        return merged

    def metric_vectors(self) -> List[MetricVector]:
        return [MetricVector.from_sample(s) for s in self.victim_samples]


def make_victim_vm(
    workload_name: str,
    vm_name: Optional[str] = None,
    **workload_kwargs,
) -> VirtualMachine:
    """A victim VM running one of the three cloud workloads."""
    workload = make_cloud_workload(workload_name, **workload_kwargs)
    memory = {"data_serving": 2.0, "web_search": 2.0, "data_analytics": 2.0}
    return VirtualMachine(
        name=vm_name or f"{workload_name}-vm",
        workload=workload,
        vcpus=2,
        memory_gb=memory.get(workload_name, 2.0),
    )


def make_stress_vm(
    kind: str,
    vm_name: Optional[str] = None,
    **stress_kwargs,
) -> VirtualMachine:
    """A VM running one of the three interfering workloads."""
    workload = make_stress_workload(kind, **stress_kwargs)
    return VirtualMachine(
        name=vm_name or f"{kind}-stress-vm",
        workload=workload,
        vcpus=2,
        memory_gb=1.0,
    )


def run_colocation(
    workload_name: str,
    load: float = 0.7,
    stress_kind: Optional[str] = None,
    stress_level: float = 1.0,
    stress_kwargs: Optional[dict] = None,
    epochs: int = 30,
    spec: MachineSpec = XEON_X5472,
    noise: float = 0.01,
    seed: int = 0,
    share_cache_domain: bool = False,
    workload_kwargs: Optional[dict] = None,
) -> ColocationRun:
    """Run a victim workload, optionally co-located with a stressor.

    Parameters
    ----------
    load:
        The victim's offered load as a fraction of its nominal load.
    stress_kind:
        ``None`` for an isolation run, otherwise ``"memory"``,
        ``"network"`` or ``"disk"``.
    stress_level:
        Intensity knob of the stressor in (0, 1].
    share_cache_domain:
        Pin the stressor onto cores sharing the victim's cache domain
        (the paper's Scenario A); otherwise the stressor lands on a
        different domain and interferes only through the bus and I/O.
    """
    host = Host(name="prod", spec=spec, noise=noise, seed=seed)
    victim = make_victim_vm(workload_name, **(workload_kwargs or {}))
    victim_cores = [0, 1]
    host.add_vm(victim, load=load, cores=victim_cores)
    if stress_kind is not None:
        stress_vm = make_stress_vm(stress_kind, **(stress_kwargs or {}))
        stress_cores = [2, 3] if not share_cache_domain else [1, 2]
        if share_cache_domain:
            # Overlap one core with the victim's cache domain by pinning
            # the stressor onto the second core of domain 0 plus the first
            # of domain 1 (domain = pair of cores on the Xeon X5472).
            stress_cores = [1, 3]
        host.add_vm(stress_vm, load=stress_level, cores=stress_cores)

    instructions_per_unit = _instructions_per_client_unit(victim.workload)
    samples: List[CounterSample] = []
    reports: List[PerformanceReport] = []
    request_rates: List[float] = []
    for _ in range(epochs):
        results = host.step()
        perf = results[victim.name]
        samples.append(perf.counters)
        reports.append(perf.report)
        # Closed-loop client view: completed requests per second, with a
        # small per-request instruction inflation when the service is
        # struggling (retries, timeouts, queue management).
        progress = perf.outcome.progress
        overhead = 1.0 + RETRY_OVERHEAD * (1.0 - progress)
        request_rates.append(
            perf.counters.inst_retired
            / (instructions_per_unit * overhead)
            / max(perf.counters.epoch_seconds, 1e-9)
        )

    mean_latency = float(np.mean([r.latency_ms for r in reports]))
    mean_throughput = float(np.mean([r.throughput for r in reports]))
    total_inst = sum(s.inst_retired for s in samples)
    total_seconds = sum(s.epoch_seconds for s in samples)
    return ColocationRun(
        workload=workload_name,
        stress_kind=stress_kind,
        stress_level=stress_level,
        victim_samples=samples,
        victim_reports=reports,
        mean_latency_ms=mean_latency,
        mean_throughput=mean_throughput,
        mean_inst_rate=total_inst / max(total_seconds, 1e-9),
        mean_request_rate=float(np.mean(request_rates)),
    )


#: Relative extra instructions per request a fully stalled service spends on
#: retries / timeouts / queue management (drives the estimate-vs-reported gap).
RETRY_OVERHEAD = 0.12


def _instructions_per_client_unit(workload: Workload) -> float:
    """Instructions per client-visible work unit (request or task)."""
    for attribute in ("INSTRUCTIONS_PER_REQUEST", "INSTRUCTIONS_PER_TASK"):
        value = getattr(workload, attribute, None)
        if value:
            return float(value)
    return 1e6


def client_reported_degradation(
    production: ColocationRun, isolation: ColocationRun
) -> float:
    """Degradation as the paper's closed-loop client emulators would report it.

    The clients measure completed requests (or task completion time, for
    Data Analytics); with a closed-loop driver the relative performance
    loss is the relative drop in the request-completion rate.
    """
    if isolation.mean_request_rate <= 0:
        return 0.0
    return max(0.0, 1.0 - production.mean_request_rate / isolation.mean_request_rate)


def latency_reported_degradation(
    production: ColocationRun, isolation: ColocationRun
) -> float:
    """Relative latency increase of the open-loop latency model (Figure 1 view)."""
    if isolation.mean_latency_ms <= 0:
        return 0.0
    return max(0.0, production.mean_latency_ms / isolation.mean_latency_ms - 1.0)


def instruction_rate_degradation(
    production: ColocationRun, isolation: ColocationRun
) -> float:
    """Transparent degradation estimate: relative drop in instruction rate."""
    if isolation.mean_inst_rate <= 0:
        return 0.0
    return max(0.0, 1.0 - production.mean_inst_rate / isolation.mean_inst_rate)


def centroid_separation(
    group_a: Sequence[MetricVector],
    group_b: Sequence[MetricVector],
    dimensions: Sequence[str],
) -> float:
    """Separation score between two groups of metric vectors.

    Distance between the group centroids divided by the pooled standard
    deviation along the line connecting them (a Fisher-style criterion).
    A score above ~2 means the clusters are visually separable, which is
    what Figures 4, 5 and 7 show.
    """
    a = np.vstack([v.as_array(dimensions) for v in group_a])
    b = np.vstack([v.as_array(dimensions) for v in group_b])
    mu_a, mu_b = a.mean(axis=0), b.mean(axis=0)
    direction = mu_b - mu_a
    norm = np.linalg.norm(direction)
    if norm < 1e-12:
        return 0.0
    direction = direction / norm
    proj_a = a @ direction
    proj_b = b @ direction
    pooled = np.sqrt(0.5 * (proj_a.var() + proj_b.var()))
    if pooled < 1e-12:
        return float("inf")
    return float(abs(proj_b.mean() - proj_a.mean()) / pooled)
