"""Figure 5 — global information across PMs running the same application.

The paper runs the Data Analytics workload across nine physical machines
and injects network interference (iperf) on a progressively larger
subset of them.  Plotting the normalised network-stall / CPU / CPI
metrics of every PM's local warning system shows that the interfered
PMs clearly deviate from the rest, so observing sibling VMs lets the
warning system distinguish cluster-wide workload changes from
interference that affects only some machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


from repro.experiments.common import centroid_separation, make_stress_vm, make_victim_vm
from repro.metrics.sample import MetricVector
from repro.virt.cluster import Cluster

#: The dimensions displayed in the paper's Figure 5.
DISPLAY_DIMENSIONS: Tuple[str, ...] = ("net_stall_cpi", "cpu_utilization", "cpi")


@dataclass
class GlobalInformationResult:
    """Per-PM metric vectors, split into interfered and quiet machines."""

    num_hosts: int
    interfered_hosts: List[str]
    per_host_vectors: Dict[str, List[MetricVector]]
    separation: float

    def quiet_vectors(self) -> List[MetricVector]:
        out: List[MetricVector] = []
        for host, vectors in self.per_host_vectors.items():
            if host not in self.interfered_hosts:
                out.extend(vectors)
        return out

    def interfered_vectors(self) -> List[MetricVector]:
        out: List[MetricVector] = []
        for host in self.interfered_hosts:
            out.extend(self.per_host_vectors.get(host, []))
        return out


def run(
    num_hosts: int = 9,
    num_interfered: int = 3,
    load: float = 0.8,
    iperf_mbps: float = 600.0,
    epochs: int = 12,
    seed: int = 23,
) -> GlobalInformationResult:
    """Reproduce the Figure 5 experiment.

    ``num_interfered`` hosts receive a co-located iperf-style VM; the
    Data Analytics VMs on all hosts run the same application id, so the
    warning system's global check is what this data feeds.
    """
    if not 0 < num_interfered < num_hosts:
        raise ValueError("num_interfered must be between 1 and num_hosts - 1")
    cluster = Cluster(num_hosts=num_hosts, seed=seed, noise=0.01)
    host_names = cluster.host_names()
    interfered = host_names[:num_interfered]

    for i, host_name in enumerate(host_names):
        vm = make_victim_vm(
            "data_analytics",
            vm_name=f"analytics-{i}",
            remote_fetch_fraction=0.6,
        )
        cluster.place_vm(vm, host_name, load=load)
        if host_name in interfered:
            stress = make_stress_vm(
                "network", vm_name=f"iperf-{i}", target_mbps=iperf_mbps
            )
            cluster.place_vm(stress, host_name, load=1.0)

    per_host: Dict[str, List[MetricVector]] = {name: [] for name in host_names}
    for _ in range(epochs):
        results = cluster.step()
        for i, host_name in enumerate(host_names):
            perf = results[host_name][f"analytics-{i}"]
            per_host[host_name].append(MetricVector.from_sample(perf.counters))

    quiet = [v for h in host_names if h not in interfered for v in per_host[h]]
    noisy = [v for h in interfered for v in per_host[h]]
    separation = centroid_separation(quiet, noisy, DISPLAY_DIMENSIONS)
    return GlobalInformationResult(
        num_hosts=num_hosts,
        interfered_hosts=list(interfered),
        per_host_vectors=per_host,
        separation=separation,
    )
