"""Figure 7 — the Core-i7 / QPI port.

Section 4.4 describes porting DeepDive to a NUMA server with two
quad-core Xeon E5640 (Core-i7 microarchitecture) processors: per-socket
integrated memory controllers, a 12 MB shared L3 and QPI instead of the
front-side bus.  The port only required a new performance model; the
separability of interference in the metric space carries over.  Figure 7
shows the Data Serving workload's metrics with and without interference
on that platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.experiments.common import centroid_separation, run_colocation
from repro.hardware.specs import CORE_I7_E5640
from repro.metrics.sample import MetricVector

#: Displayed dimensions: L3/QPI pressure and the overall CPI.
DISPLAY_DIMENSIONS: Tuple[str, ...] = ("l2_lines_in_pki", "bus_tran_pki", "cpi")


@dataclass
class I7PortResult:
    """Figure 7: Data Serving on the Core-i7 platform."""

    normal_points: List[MetricVector]
    interference_points: List[MetricVector]
    separation: float
    #: Same experiment on the Xeon X5472 for the cross-platform comparison.
    xeon_separation: float


def run(
    load_levels: Sequence[float] = (0.4, 0.6, 0.8),
    interference_levels: Sequence[float] = (0.6, 1.0),
    epochs: int = 8,
    seed: int = 41,
) -> I7PortResult:
    """Collect the Figure 7 point clouds on the i7 spec (and Xeon for reference)."""
    rng = np.random.default_rng(seed)

    def collect(spec):
        normal: List[MetricVector] = []
        interference: List[MetricVector] = []
        for load in load_levels:
            quiet = run_colocation(
                "data_serving",
                load=load,
                epochs=epochs,
                spec=spec,
                seed=int(rng.integers(0, 2**31)),
            )
            normal.extend(MetricVector.from_sample(s) for s in quiet.victim_samples)
        for level in interference_levels:
            noisy = run_colocation(
                "data_serving",
                load=float(rng.choice(load_levels)),
                stress_kind="memory",
                stress_level=level,
                stress_kwargs={"working_set_mb": 192.0},
                epochs=epochs,
                spec=spec,
                seed=int(rng.integers(0, 2**31)),
                share_cache_domain=True,
            )
            interference.extend(
                MetricVector.from_sample(s) for s in noisy.victim_samples
            )
        return normal, interference

    i7_normal, i7_interference = collect(CORE_I7_E5640)
    from repro.hardware.specs import XEON_X5472

    xeon_normal, xeon_interference = collect(XEON_X5472)
    return I7PortResult(
        normal_points=i7_normal,
        interference_points=i7_interference,
        separation=centroid_separation(i7_normal, i7_interference, DISPLAY_DIMENSIONS),
        xeon_separation=centroid_separation(
            xeon_normal, xeon_interference, DISPLAY_DIMENSIONS
        ),
    )
