"""Regression machinery.

Used in two places:

* training the synthetic benchmark — learning which benchmark input
  parameters reproduce a given target metric vector (Section 4.3, "We
  used a standard regression algorithm for this training task");
* small helper fits inside the experiments (e.g. trend slopes).

Only ridge-regularised linear least squares is needed; it is implemented
directly on numpy so the package has no dependency on sklearn.
"""

from repro.regression.linear import RidgeRegression, polynomial_features
from repro.regression.training import (
    SyntheticBenchmarkTrainer,
    TrainedSynthesizer,
)

__all__ = [
    "RidgeRegression",
    "polynomial_features",
    "SyntheticBenchmarkTrainer",
    "TrainedSynthesizer",
]
