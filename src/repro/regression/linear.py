"""Ridge-regularised multi-output linear regression."""

from __future__ import annotations

from typing import Optional

import numpy as np


class RidgeRegression:
    """Multi-output linear least squares with L2 regularisation.

    Fits ``Y ≈ X W + b`` by solving the regularised normal equations.
    Inputs and outputs are standardised internally so the regularisation
    strength behaves consistently across differently scaled features.
    """

    def __init__(self, alpha: float = 1e-3) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None       # (d_in, d_out)
        self.intercept_: Optional[np.ndarray] = None  # (d_out,)
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.coef_ is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty data set")

        self._x_mean = x.mean(axis=0)
        std = x.std(axis=0)
        self._x_std = np.where(std < 1e-12, 1.0, std)
        xs = (x - self._x_mean) / self._x_std

        y_mean = y.mean(axis=0)
        yc = y - y_mean

        d = xs.shape[1]
        gram = xs.T @ xs + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, xs.T @ yc)
        self.intercept_ = y_mean
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        x = np.atleast_2d(x)
        xs = (x - self._x_mean) / self._x_std
        out = xs @ self.coef_ + self.intercept_
        if out.shape[1] == 1:
            out = out[:, 0]
        return out[0] if single else out

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 (averaged over outputs)."""
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        pred = np.atleast_2d(self.predict(x))
        if pred.ndim == 1:
            pred = pred[:, None]
        if pred.shape != y.shape:
            pred = pred.reshape(y.shape)
        ss_res = np.sum((y - pred) ** 2, axis=0)
        ss_tot = np.sum((y - y.mean(axis=0)) ** 2, axis=0)
        ss_tot = np.where(ss_tot < 1e-12, 1.0, ss_tot)
        return float(np.mean(1.0 - ss_res / ss_tot))


def polynomial_features(x: np.ndarray, degree: int = 2) -> np.ndarray:
    """Expand features with element-wise powers up to ``degree``.

    A light-weight alternative to a full polynomial basis: interactions
    are omitted, keeping the feature count linear in the input dimension,
    which is plenty for the smooth counter-to-input mappings the
    synthetic-benchmark training needs.
    """
    if degree < 1:
        raise ValueError("degree must be at least 1")
    x = np.atleast_2d(np.asarray(x, dtype=float))
    parts = [x ** p for p in range(1, degree + 1)]
    return np.hstack(parts)
