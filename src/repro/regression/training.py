"""Training the synthetic benchmark (Section 4.3).

"Creating the benchmark involved learning the set of input values that
best approximates any set of metric values.  We used a standard
regression algorithm for this training task.  Though the training phase
may take a long time (a few days in our experiments), this training is
done only once for each server type."

The trainer samples random input-parameter vectors, runs the synthetic
benchmark alone on a reference machine of the target server type,
normalises the resulting counters into metric vectors, and fits a ridge
regression that maps *metric vectors to input parameters*.  At placement
time, :class:`TrainedSynthesizer.synthesize` takes the metric vector of
the VM to mimic and returns a configured
:class:`~repro.workloads.synthetic.SyntheticBenchmark`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hardware.machine import PhysicalMachine
from repro.hardware.specs import MachineSpec, XEON_X5472
from repro.metrics.sample import WARNING_METRICS, MetricVector
from repro.regression.linear import RidgeRegression, polynomial_features
from repro.workloads.synthetic import SyntheticBenchmark, SyntheticInputs


@dataclass
class TrainedSynthesizer:
    """A trained metric-vector -> benchmark-inputs mapping for one server type.

    Two inversion strategies are kept:

    * ``"knn"`` (default) — locally weighted nearest neighbours in the
      standardised metric space: the training samples whose observed
      metric vectors are closest to the target contribute their input
      parameters, weighted by inverse distance.  Robust to the strong
      non-linearity of the counter-to-input mapping.
    * ``"ridge"`` — the global polynomial ridge regression; cheaper to
      evaluate but less accurate far from the training distribution.
    """

    model: RidgeRegression
    feature_degree: int
    machine_spec: MachineSpec
    training_error: float
    samples_used: int
    #: Training-set metric vectors (standardised) and their input vectors.
    metric_matrix: Optional[np.ndarray] = None
    input_matrix: Optional[np.ndarray] = None
    metric_mean: Optional[np.ndarray] = None
    metric_std: Optional[np.ndarray] = None
    method: str = "knn"
    neighbors: int = 5

    def _knn_inputs(self, target: MetricVector) -> SyntheticInputs:
        scaled = (target.as_array() - self.metric_mean) / self.metric_std
        data = (self.metric_matrix - self.metric_mean) / self.metric_std
        distances = np.sqrt(np.sum((data - scaled) ** 2, axis=1))
        order = np.argsort(distances)[: self.neighbors]
        weights = 1.0 / np.maximum(distances[order], 1e-9)
        weights = weights / weights.sum()
        blended = (self.input_matrix[order] * weights[:, None]).sum(axis=0)
        return SyntheticInputs.from_array(blended)

    def inputs_for(
        self,
        target: MetricVector,
        target_inst_rate: Optional[float] = None,
        saturate: bool = False,
    ) -> SyntheticInputs:
        """Benchmark inputs predicted to reproduce ``target``.

        Parameters
        ----------
        target:
            The normalised metric vector to mimic (per-instruction
            character: cache/memory intensity, branches, I/O stalls).
        target_inst_rate:
            The VM's observed instruction-retirement rate (instructions
            per second).  When given, the benchmark's compute loop is
            sized to demand slightly more than that rate, so the
            benchmark exerts the same absolute pressure as the VM and —
            like a VM running at its maximum request rate — loses
            throughput measurably when a co-runner interferes.
        saturate:
            Fallback when no rate is known: raise the compute-iteration
            count so the benchmark keeps its cores busy regardless.
        """
        if self.method == "knn" and self.metric_matrix is not None:
            inputs = self._knn_inputs(target)
        else:
            features = polynomial_features(
                target.as_array()[None, :], degree=self.feature_degree
            )
            raw = np.asarray(self.model.predict(features)).ravel()
            inputs = SyntheticInputs.from_array(raw)
        if target_inst_rate is not None and target_inst_rate > 0:
            inputs.compute_iterations = 1.05 * target_inst_rate / 1e9
            inputs = inputs.clipped()
        elif saturate:
            inputs.compute_iterations = max(inputs.compute_iterations, 16.0)
            inputs = inputs.clipped()
        return inputs

    def synthesize(
        self, target: MetricVector, target_inst_rate: Optional[float] = None
    ) -> SyntheticBenchmark:
        """A synthetic benchmark configured to mimic ``target``."""
        return SyntheticBenchmark(
            inputs=self.inputs_for(target, target_inst_rate=target_inst_rate)
        )


class SyntheticBenchmarkTrainer:
    """Once-per-server-type training of the synthetic benchmark."""

    def __init__(
        self,
        machine_spec: MachineSpec = XEON_X5472,
        samples: int = 400,
        epoch_seconds: float = 1.0,
        feature_degree: int = 2,
        alpha: float = 1e-2,
        method: str = "knn",
        neighbors: int = 5,
        seed: int = 0,
    ) -> None:
        if samples < 10:
            raise ValueError("training needs at least 10 samples")
        if method not in ("knn", "ridge"):
            raise ValueError("method must be 'knn' or 'ridge'")
        if neighbors < 1:
            raise ValueError("neighbors must be positive")
        self.machine_spec = machine_spec
        self.samples = samples
        self.epoch_seconds = epoch_seconds
        self.feature_degree = feature_degree
        self.alpha = alpha
        self.method = method
        self.neighbors = neighbors
        self.seed = seed

    # ------------------------------------------------------------------
    def _random_inputs(self, rng: np.random.Generator) -> SyntheticInputs:
        """Draw a random but physically plausible input-parameter vector."""
        return SyntheticInputs(
            compute_iterations=float(rng.uniform(0.2, 12.0)),
            working_set_mb=float(np.exp(rng.uniform(np.log(1.0), np.log(768.0)))),
            pointer_chase_fraction=float(rng.uniform(0.0, 1.0)),
            locality=float(rng.uniform(0.05, 0.95)),
            load_intensity_pki=float(rng.uniform(100.0, 600.0)),
            l1_stress_pki=float(rng.uniform(5.0, 150.0)),
            branch_intensity_pki=float(rng.uniform(50.0, 250.0)),
            disk_mbps=float(rng.choice([0.0, rng.uniform(0.0, 60.0)])),
            disk_sequential_fraction=float(rng.uniform(0.1, 1.0)),
            network_mbps=float(rng.choice([0.0, rng.uniform(0.0, 500.0)])),
            parallelism=float(rng.integers(1, 5)),
        ).clipped()

    def _observe(
        self, machine: PhysicalMachine, inputs: SyntheticInputs
    ) -> MetricVector:
        """Run the benchmark alone and return the normalised metric vector."""
        bench = SyntheticBenchmark(inputs=inputs)
        demand = bench.demand(1.0, epoch_seconds=self.epoch_seconds)
        outcome = machine.run_in_isolation(demand, epoch_seconds=self.epoch_seconds)
        return MetricVector.from_sample(outcome.counters, label="synthetic")

    # ------------------------------------------------------------------
    def train(self) -> TrainedSynthesizer:
        """Generate the training set and fit the inverse mapping."""
        rng = np.random.default_rng(self.seed)
        machine = PhysicalMachine(
            spec=self.machine_spec, name="trainer", noise=0.0, seed=self.seed
        )
        inputs_rows: List[np.ndarray] = []
        metric_rows: List[np.ndarray] = []
        for _ in range(self.samples):
            inputs = self._random_inputs(rng)
            vector = self._observe(machine, inputs)
            inputs_rows.append(inputs.as_array())
            metric_rows.append(vector.as_array())

        metric_matrix = np.vstack(metric_rows)
        input_matrix = np.vstack(inputs_rows)
        x = polynomial_features(metric_matrix, degree=self.feature_degree)
        model = RidgeRegression(alpha=self.alpha).fit(x, input_matrix)

        metric_mean = metric_matrix.mean(axis=0)
        metric_std = metric_matrix.std(axis=0)
        metric_std = np.where(metric_std < 1e-12, 1.0, metric_std)

        synthesizer = TrainedSynthesizer(
            model=model,
            feature_degree=self.feature_degree,
            machine_spec=self.machine_spec,
            training_error=float("nan"),
            samples_used=self.samples,
            metric_matrix=metric_matrix,
            input_matrix=input_matrix,
            metric_mean=metric_mean,
            metric_std=metric_std,
            method=self.method,
            neighbors=self.neighbors,
        )

        # Held-out-style training error: how far the *reproduced* metric
        # vectors are from the targets, measured in relative terms on the
        # CPI dimension (the dimension the degradation estimate
        # ultimately relies on).
        errors: List[float] = []
        check = min(40, self.samples)
        rng_check = np.random.default_rng(self.seed + 1)
        indices = rng_check.choice(self.samples, size=check, replace=False)
        for i in indices:
            target_vec = MetricVector(values=dict(zip(WARNING_METRICS, metric_rows[i])))
            predicted_inputs = synthesizer.inputs_for(target_vec)
            reproduced = self._observe(machine, predicted_inputs)
            target_cpi = max(target_vec["cpi"], 1e-9)
            errors.append(abs(reproduced["cpi"] - target_vec["cpi"]) / target_cpi)
        synthesizer.training_error = float(np.mean(errors)) if errors else float("nan")
        return synthesizer
